// Owner-return fixtures: a function returning a resource it acquired
// hands the release obligation to its callers, exactly like a direct
// acquisition (error-branch pruning included).
package owner

import (
	"errors"

	"snapshot"
)

var errClosed = errors.New("closed")

func isClosed() bool { return false }

// acquireChecked mirrors the testbed's snapshot acquire-with-recheck:
// the error path releases, the success path returns ownership.
func acquireChecked(st *snapshot.Store) (*snapshot.Snapshot, error) {
	s := st.Acquire()
	if isClosed() {
		s.Release()
		return nil, errClosed
	}
	return s, nil
}

func goodCaller(st *snapshot.Store) error {
	s, err := acquireChecked(st)
	if err != nil {
		return err
	}
	defer s.Release()
	return nil
}

func badCaller(st *snapshot.Store, c bool) error {
	s, err := acquireChecked(st) // want "not released on the path"
	if err != nil {
		return err
	}
	if c {
		return nil // leaks the inherited pin
	}
	s.Release()
	return nil
}

// Wrappers stack: the owner-return summary is a fix-point.
func acquireWrapped(st *snapshot.Store) (*snapshot.Snapshot, error) {
	s, err := acquireChecked(st)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func badWrappedCaller(st *snapshot.Store, c bool) error {
	s, err := acquireWrapped(st) // want "not released on the path"
	if err != nil {
		return err
	}
	if c {
		return nil
	}
	s.Release()
	return nil
}
