// Waiver fixtures: //dkblint:pinsafe suppresses the finding at the
// acquisition it covers, and only there.
package waived

import "storage"

// The background flusher owns this pin by protocol.
func waivedLeak(p *storage.Pager) {
	pg, _ := p.Fetch(1) //dkblint:pinsafe handed to the background flusher, which unpins after write-back
	_ = pg.Data
}

// A waiver on one acquisition does not cover the next.
func waivedThenLeak(p *storage.Pager) {
	//dkblint:pinsafe the flusher owns this one
	a, _ := p.Fetch(1)
	_ = a.Data
	b, _ := p.Fetch(2) // want "not released on the path"
	_ = b.Data
}
