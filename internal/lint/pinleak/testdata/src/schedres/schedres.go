// Scheduler-resource fixtures: clients and task groups carry the same
// must-release obligation as pins.
package schedres

import "sched"

func goodClient(p *sched.Pool) {
	c := p.NewClient()
	defer c.Close()
	g := c.Group()
	g.Go(func() {})
	g.Wait()
}

func badClient(p *sched.Pool, n int) {
	c := p.NewClient() // want "not released on the path"
	if n > 0 {
		return // client leaks its queue slot
	}
	c.Close()
}

func badGroup(c *sched.Client, cond bool) {
	g := c.Group() // want "not released on the path"
	g.Go(func() {})
	if cond {
		return // un-waited group strands its tickets
	}
	g.Wait()
}

func badSnapshotless(p *sched.Pool) {
	p.NewClient() // want "discarded without Client.Close"
}
