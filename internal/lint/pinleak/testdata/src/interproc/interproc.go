// Interprocedural fixtures: callee parameter summaries decide whether
// a call releases the resource, takes ownership, or leaves the
// obligation with the caller.
package interproc

import "storage"

func read(pg *storage.Page) int { return len(pg.Data) }

// A readonly callee does NOT transfer ownership — the obligation stays
// here and the missing Unpin is a leak. (pinpair assumed any call took
// the page; this is the upgrade.)
func badReadonlyCallee(p *storage.Pager) {
	pg, err := p.Fetch(1) // want "not released on the path"
	if err != nil {
		return
	}
	read(pg)
}

func finish(p *storage.Pager, pg *storage.Page) { p.Unpin(pg) }

// A callee that releases its parameter counts as the release.
func goodReleaseHelper(p *storage.Pager) {
	pg, err := p.Fetch(1)
	if err != nil {
		return
	}
	finish(p, pg)
}

// The release summary propagates through wrappers.
func finish2(p *storage.Pager, pg *storage.Page) { finish(p, pg) }

func goodChainedRelease(p *storage.Pager) {
	pg, err := p.Fetch(1)
	if err != nil {
		return
	}
	finish2(p, pg)
}

var kept *storage.Page

func keep(pg *storage.Page) { kept = pg }

// A callee that stores its parameter owns it: tracking ends.
func goodStoreHelper(p *storage.Pager) {
	pg, err := p.Fetch(1)
	if err != nil {
		return
	}
	keep(pg)
}

// Readonly before a real release: the intermediate call must not end
// tracking, and the release downstream must still satisfy it.
func goodReadThenRelease(p *storage.Pager) {
	pg, err := p.Fetch(1)
	if err != nil {
		return
	}
	read(pg)
	p.Unpin(pg)
}
