// Closure fixtures: an acquisition inside a function literal is
// checked against the closure's own flow graph.
package closures

import "snapshot"

func goodClosure(st *snapshot.Store) func() {
	return func() {
		s := st.Acquire()
		defer s.Release()
	}
}

func badClosure(st *snapshot.Store, c bool) func() {
	return func() {
		s := st.Acquire() // want "not released on the path"
		if c {
			return
		}
		s.Release()
	}
}
