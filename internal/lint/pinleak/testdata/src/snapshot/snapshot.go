// Package snapshot is a fixture stub for the real internal/snapshot
// package.
package snapshot

// Snapshot is a pinned database version.
type Snapshot struct{ v int }

func (s *Snapshot) Release() {}

// Store hands out pinned snapshots.
type Store struct{}

func (st *Store) Acquire() *Snapshot { return &Snapshot{} }
