// Package sched is a fixture stub for the real internal/sched package.
package sched

type Pool struct{}

func (p *Pool) NewClient() *Client { return &Client{} }

type Client struct{}

func (c *Client) Close()        {}
func (c *Client) Group() *Group { return &Group{} }

type Group struct{}

func (g *Group) Go(fn func()) {}
func (g *Group) Wait()        {}
