// Page-pin fixtures, carried over from the retired pinpair analyzer:
// the intraprocedural must-release core is unchanged.
package a

import "storage"

func goodDefer(p *storage.Pager) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer p.Unpin(pg)
	_ = pg.Data
	return nil
}

func goodDeferClosure(p *storage.Pager) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer func() { p.Unpin(pg) }()
	return nil
}

func goodBothBranches(p *storage.Pager, c bool) {
	pg, err := p.Fetch(1)
	if err != nil {
		return
	}
	if c {
		p.Unpin(pg)
		return
	}
	p.Unpin(pg)
}

// The error-return branch carries no pin obligation: pg is nil there.
func goodErrGuard(p *storage.Pager) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	_ = pg.Data
	p.Unpin(pg)
	return nil
}

// Returning the page transfers the unpin obligation to the caller (and
// makes this function an owner-returning source — see the owner
// fixture package for the caller side).
func goodEscapeReturn(p *storage.Pager) (*storage.Page, error) {
	pg, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// The fallthrough edge carries the obligation into the next clause.
func goodFallthrough(p *storage.Pager, k int) {
	pg, _ := p.Fetch(1)
	switch k {
	case 0:
		_ = pg.Data
		fallthrough
	case 1:
		p.Unpin(pg)
	default:
		p.Unpin(pg)
	}
}

func badEarlyReturn(p *storage.Pager) error {
	pg, err := p.Fetch(1) // want "not released on the path"
	if err != nil {
		return err
	}
	if len(pg.Data) == 0 {
		return nil // leaks the pin
	}
	p.Unpin(pg)
	return nil
}

func badDiscard(p *storage.Pager) {
	_, _ = p.Allocate() // want "discarded without Pager.Unpin"
}

func badBareCall(p *storage.Pager) {
	p.Allocate() // want "discarded without Pager.Unpin"
}

func badLoop(p *storage.Pager, n int) {
	var pg *storage.Page
	for i := 0; i < n; i++ {
		pg, _ = p.Fetch(1) // want "still held when the loop re-acquires"
		_ = pg.Data
	}
	if pg != nil {
		p.Unpin(pg)
	}
}

func badSwitch(p *storage.Pager, k int) {
	pg, _ := p.Fetch(1) // want "may leave the function without Pager.Unpin"
	switch k {
	case 0:
		p.Unpin(pg)
	}
}

func badNoUnpin(p *storage.Pager) {
	pg, err := p.AllocateReusable() // want "not released on the path"
	if err != nil {
		return
	}
	_ = pg.Data
}
