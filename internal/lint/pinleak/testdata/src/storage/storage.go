// Package storage is a fixture stub standing in for the real
// internal/storage package: pinleak matches by package, type and method
// name, so only the shapes matter.
package storage

type PageID uint32

// Page is a pinned buffer-pool page.
type Page struct{ Data []byte }

// Pager hands out pinned pages.
type Pager struct{}

func (p *Pager) Fetch(id PageID) (*Page, error)   { return &Page{}, nil }
func (p *Pager) Allocate() (*Page, error)         { return &Page{}, nil }
func (p *Pager) AllocateReusable() (*Page, error) { return &Page{}, nil }
func (p *Pager) Unpin(pg *Page)                   {}
