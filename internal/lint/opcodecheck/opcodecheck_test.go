package opcodecheck_test

import (
	"testing"

	"dkbms/internal/lint/lintkit"
	"dkbms/internal/lint/opcodecheck"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, opcodecheck.Analyzer, "testdata/src")
}
