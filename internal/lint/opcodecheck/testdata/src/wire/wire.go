// Package wire is a fixture stub exercising opcodecheck's payload
// convention: MsgFoo → type Foo with Encode + func DecodeFoo, with
// directives declaring the exceptions.
package wire

type MsgType uint8

const (
	MsgPing MsgType = iota + 1 //dkblint:nopayload
	MsgLoad
	MsgQuery
	MsgBad // want "no payload type Bad"
)

const (
	MsgPong MsgType = iota + 0x10 //dkblint:nopayload
	MsgErr                        //dkblint:payload=Failure // want "has no Encode method" "has no DecodeFailure function"
)

type Load struct{ Src string }

func (m Load) Encode() []byte { return nil }

func DecodeLoad(p []byte) (Load, error) { return Load{}, nil }

// QueryOpts carries per-query option bits inside the Query payload.
// The bit constants are untyped (not MsgType), so the analyzer must
// neither demand payload codecs for them nor count them as opcodes in
// dispatch switches.
type QueryOpts struct {
	Naive bool
	Trace bool
}

const (
	optNaive = 1 << iota
	optTrace
)

func (o QueryOpts) encode() byte {
	var b byte
	if o.Naive {
		b |= optNaive
	}
	if o.Trace {
		b |= optTrace
	}
	return b
}

type Query struct {
	Src  string
	Opts QueryOpts
}

func (m Query) Encode() []byte { return []byte{m.Opts.encode()} }

func DecodeQuery(p []byte) (Query, error) { return Query{}, nil }

// Failure is declared as MsgErr's payload but has no codec yet.
type Failure struct{ Msg string }

func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "PING"
	case MsgLoad:
		return "LOAD"
	case MsgQuery:
		return "QUERY"
	case MsgBad:
		return "BAD"
	case MsgPong:
		return "PONG"
	case MsgErr:
		return "ERR"
	}
	return "?"
}
