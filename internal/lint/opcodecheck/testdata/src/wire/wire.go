// Package wire is a fixture stub exercising opcodecheck's payload
// convention: MsgFoo → type Foo with Encode + func DecodeFoo, with
// directives declaring the exceptions.
package wire

type MsgType uint8

const (
	MsgPing MsgType = iota + 1 //dkblint:nopayload
	MsgLoad
	MsgQuery
	MsgBad // want "no payload type Bad"
)

const (
	MsgPong MsgType = iota + 0x10 //dkblint:nopayload
	MsgErr                        //dkblint:payload=Failure // want "has no Encode method" "has no DecodeFailure function"
)

type Load struct{ Src string }

func (m Load) Encode() []byte { return nil }

func DecodeLoad(p []byte) (Load, error) { return Load{}, nil }

type Query struct{ Src string }

func (m Query) Encode() []byte { return nil }

func DecodeQuery(p []byte) (Query, error) { return Query{}, nil }

// Failure is declared as MsgErr's payload but has no codec yet.
type Failure struct{ Msg string }

func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "PING"
	case MsgLoad:
		return "LOAD"
	case MsgQuery:
		return "QUERY"
	case MsgBad:
		return "BAD"
	case MsgPong:
		return "PONG"
	case MsgErr:
		return "ERR"
	}
	return "?"
}
