// Package srv exercises opcodecheck's dispatch-exhaustiveness rule
// from a package importing the protocol.
package srv

import "wire"

func dispatchBad(t wire.MsgType) string {
	switch t { // want "does not handle MsgQuery, MsgBad"
	case wire.MsgPing:
		return "ping"
	case wire.MsgLoad:
		return "load"
	default:
		return "?"
	}
}

func dispatchOK(t wire.MsgType) string {
	switch t {
	case wire.MsgPing:
		return "ping"
	case wire.MsgLoad, wire.MsgQuery:
		return "load/query"
	case wire.MsgBad:
		fallthrough
	default:
		return "?"
	}
}

// A switch over responses only must cover the responses, not requests.
func replyBad(t wire.MsgType) bool {
	switch t { // want "does not handle MsgErr"
	case wire.MsgPong:
		return true
	}
	return false
}

func replyOK(t wire.MsgType) bool {
	switch t {
	case wire.MsgPong, wire.MsgErr:
		return true
	}
	return false
}
