// Package opcodecheck keeps the wire protocol closed under extension.
// Adding a wire.MsgType constant without updating every consumer is the
// classic protocol bug: the server's dispatch switch silently routes the
// new request to its default error arm, or the new message has no
// payload codec. The analyzer enforces two rules:
//
//  1. Exhaustive switches: any switch whose tag is wire.MsgType must
//     cover every request constant if it handles any request, and every
//     response constant if it handles any response (the boundary is
//     0x10, the first response value). This covers both the server
//     dispatch switch and MsgType.String.
//  2. Payload convention (checked inside the wire package itself): each
//     constant MsgFoo must have a payload struct Foo with an Encode
//     method and a DecodeFoo function. Messages with no payload carry a
//     `//dkblint:nopayload` directive; an irregular payload name is
//     declared with `//dkblint:payload=Name`.
package opcodecheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the opcodecheck pass.
var Analyzer = &lintkit.Analyzer{
	Name: "opcodecheck",
	Doc:  "every wire opcode is dispatched exhaustively and has its payload codec",
	Run:  run,
}

// responseBase is the first response opcode value; requests sit below.
const responseBase = 0x10

func run(pass *lintkit.Pass) error {
	checkSwitches(pass)
	if declaresMsgType(pass.Pkg) {
		checkPayloadConvention(pass)
	}
	return nil
}

// msgTypeOf returns the named wire.MsgType type if t is it (possibly
// via the package under analysis being wire itself).
func msgTypeOf(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "MsgType" {
		return nil
	}
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "wire" {
		return nil
	}
	return named
}

func declaresMsgType(pkg *lintkit.Package) bool {
	if pkg.Types == nil || pkg.Types.Name() != "wire" {
		return false
	}
	_, ok := pkg.Types.Scope().Lookup("MsgType").(*types.TypeName)
	return ok
}

// opcode is one MsgType constant.
type opcode struct {
	obj   *types.Const
	value int64
}

func (o opcode) request() bool { return o.value < responseBase }

// opcodesOf lists the MsgType constants declared in the package owning
// the type, sorted by value.
func opcodesOf(named *types.Named) []opcode {
	scope := named.Obj().Pkg().Scope()
	var out []opcode
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != named {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			continue
		}
		out = append(out, opcode{obj: c, value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// checkSwitches enforces rule 1 over every switch in the package.
func checkSwitches(pass *lintkit.Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := msgTypeOf(tv.Type)
			if named == nil {
				return true
			}
			handled := map[types.Object]bool{}
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch e := ast.Unparen(e).(type) {
					case *ast.Ident:
						id = e
					case *ast.SelectorExpr:
						id = e.Sel
					default:
						continue
					}
					if c, ok := info.Uses[id].(*types.Const); ok {
						handled[c] = true
					}
				}
			}
			ops := opcodesOf(named)
			anyReq, anyResp := false, false
			for _, op := range ops {
				if handled[op.obj] {
					if op.request() {
						anyReq = true
					} else {
						anyResp = true
					}
				}
			}
			var missing []string
			for _, op := range ops {
				if handled[op.obj] {
					continue
				}
				if (op.request() && anyReq) || (!op.request() && anyResp) {
					missing = append(missing, op.obj.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch on wire.MsgType does not handle %s", strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// checkPayloadConvention enforces rule 2 inside the wire package.
func checkPayloadConvention(pass *lintkit.Pass) {
	scope := pass.Pkg.Types.Scope()
	mt, _ := scope.Lookup("MsgType").(*types.TypeName)
	named, ok := mt.Type().(*types.Named)
	if !ok {
		return
	}
	directives := constDirectives(pass)
	for _, op := range opcodesOf(named) {
		name := op.obj.Name()
		dir := directives[name]
		if dir == "nopayload" {
			continue
		}
		payload := strings.TrimPrefix(name, "Msg")
		if strings.HasPrefix(dir, "payload=") {
			payload = strings.TrimPrefix(dir, "payload=")
		} else if !strings.HasPrefix(name, "Msg") {
			pass.Reportf(op.obj.Pos(), "opcode %s does not follow the Msg<Name> naming convention", name)
			continue
		}
		tn, _ := scope.Lookup(payload).(*types.TypeName)
		if tn == nil {
			pass.Reportf(op.obj.Pos(), "opcode %s has no payload type %s (declare it, or mark the opcode //dkblint:nopayload)", name, payload)
			continue
		}
		if !hasEncode(tn) {
			pass.Reportf(op.obj.Pos(), "payload type %s for opcode %s has no Encode method", payload, name)
		}
		if _, ok := scope.Lookup("Decode" + payload).(*types.Func); !ok {
			pass.Reportf(op.obj.Pos(), "opcode %s has no Decode%s function", name, payload)
		}
	}
}

func hasEncode(tn *types.TypeName) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Encode" {
			return true
		}
	}
	return false
}

// constDirectives maps constant names to their //dkblint:... directive,
// read from the doc or line comment of the declaring spec.
func constDirectives(pass *lintkit.Pass) map[string]string {
	out := map[string]string{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				dir := directiveIn(vs.Doc)
				if dir == "" {
					dir = directiveIn(vs.Comment)
				}
				if dir == "" {
					continue
				}
				for _, name := range vs.Names {
					out[name.Name] = dir
				}
			}
		}
	}
	return out
}

// directiveIn decodes the first //dkblint: directive of a comment group
// through the shared grammar (lintkit.ParseDirective), rendered back to
// the `name` / `name=value` form the payload rules match on.
func directiveIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if d, ok := lintkit.ParseDirective(c.Text); ok {
			if d.Value != "" {
				return d.Name + "=" + d.Value
			}
			return d.Name
		}
	}
	return ""
}
