// Package ring mirrors the obs slow-query ring's concurrency pattern:
// a slice of atomic.Pointer slots, an atomic cursor, and an atomic
// threshold. Typed atomics (atomic.Pointer, atomic.Uint64, ...) are
// atomic by construction — every access goes through their methods, so
// the ring proper carries no plain-access obligations and lints clean.
// The obligations appear the moment a field mixes untyped sync/atomic
// calls with plain access, as the recorded counter below demonstrates.
package ring

import "sync/atomic"

type entry struct {
	query     string
	latencyNs int64
}

type ring struct {
	slots     []atomic.Pointer[entry]
	cursor    atomic.Uint64
	threshold atomic.Int64

	// recorded is the old-style counter: a plain int64 driven through
	// sync/atomic function calls. Once any access is atomic, all must be.
	recorded int64
}

// record is the slow-path pattern: threshold gate, cursor claim, slot
// publish. All through typed atomics — no diagnostics.
func (r *ring) record(e *entry) {
	if e.latencyNs < r.threshold.Load() {
		return
	}
	atomic.AddInt64(&r.recorded, 1)
	i := r.cursor.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(e)
}

// snapshot reads every slot through the typed atomic: clean.
func (r *ring) snapshot() []entry {
	out := make([]entry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

func (r *ring) goodRecorded() int64 { return atomic.LoadInt64(&r.recorded) }

func (r *ring) badRecorded() int64 { return r.recorded } // want "non-atomic access to recorded"

func (r *ring) badReset() { r.recorded = 0 } // want "non-atomic access to recorded"
