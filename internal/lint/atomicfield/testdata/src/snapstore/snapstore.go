// Package snapstore mirrors the snapshot store's publication pattern:
// an atomic.Pointer carrying the current immutable snapshot, pin
// counts driven through sync/atomic, and a single-writer commit mutex.
// Typed atomics (the published pointer) lint clean by construction.
// The trap the fixture encodes: a field accessed via untyped
// sync/atomic by lock-free readers is NOT safe to touch plainly under
// the commit mutex — the mutex orders writers against each other, not
// against readers that never take it.
package snapstore

import (
	"sync"
	"sync/atomic"
)

type snap struct {
	gen    uint64
	tables map[string]int
	// pins counts readers holding this snapshot; acquire/release drive
	// it through sync/atomic, so every access must be atomic.
	pins int64
}

type store struct {
	commitMu sync.Mutex
	current  atomic.Pointer[snap]
}

// acquire is the reader pin loop: load the published pointer, pin it,
// re-check currentness. All snapshot state is reached through the
// typed atomic pointer; the pin count uses untyped atomics.
func (st *store) acquire() *snap {
	for {
		s := st.current.Load()
		atomic.AddInt64(&s.pins, 1)
		if st.current.Load() == s {
			return s
		}
		atomic.AddInt64(&s.pins, -1)
	}
}

func release(s *snap) { atomic.AddInt64(&s.pins, -1) }

// publish is the single-writer commit path: build the successor off to
// the side, swap the pointer. Clean — the new snapshot is private until
// the Store makes it visible.
func (st *store) publish(tables map[string]int) {
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	old := st.current.Load()
	next := &snap{gen: old.gen + 1, tables: tables}
	st.current.Store(next)
}

// drained reads the pin count through sync/atomic: clean.
func drained(s *snap) bool { return atomic.LoadInt64(&s.pins) == 0 }

// badReclaim holds the commit mutex and concludes the old snapshot is
// private — but readers pin without ever taking commitMu, so the plain
// read races with their atomic adds.
func (st *store) badReclaim(old *snap) bool {
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	return old.pins == 0 // want "non-atomic access to pins"
}
