package a

import "sync/atomic"

type Counters struct {
	Hits   int64
	Misses int64
}

type Server struct {
	stats Counters
}

var generation uint64

func (s *Server) hit()  { atomic.AddInt64(&s.stats.Hits, 1) }
func (s *Server) miss() { atomic.AddInt64(&s.stats.Misses, 1) }

func bumpGen() { atomic.AddUint64(&generation, 1) }

func (s *Server) badRead() int64 { return s.stats.Hits } // want "non-atomic access to Hits"

func (s *Server) badWrite() { s.stats.Misses = 0 } // want "non-atomic access to Misses"

func badGen() uint64 { return generation } // want "non-atomic access to generation"

// Snapshot reads atomically and returns a value copy.
func (s *Server) Snapshot() Counters {
	return Counters{
		Hits:   atomic.LoadInt64(&s.stats.Hits),
		Misses: atomic.LoadInt64(&s.stats.Misses),
	}
}

// Reading a field off the returned copy touches private memory.
func goodCopyRead(s *Server) int64 {
	return s.Snapshot().Hits
}

// Fields never touched by sync/atomic carry no obligation.
type Plain struct{ N int64 }

func goodPlain(p *Plain) int64 {
	p.N++
	return p.N
}
