// Package atomicfield enforces all-or-nothing atomicity: once any code
// in the module accesses a struct field or package-level variable
// through sync/atomic, every access must go through sync/atomic. A
// single plain read or write silently races with the atomic ones — the
// exact class of bug the testbed's Stats counters (db, stored, server)
// and rtlib's run sequencing had before they were converted.
//
// The analyzer runs a module-wide census over every target package
// (Pass.All) collecting variables whose address is passed to a
// sync/atomic call, then flags plain uses of those variables in the
// package under analysis. Composite-literal keys and pre-publication
// initialization inside composite literals are exempt by convention.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dkbms/internal/lint/lintkit"
)

// Analyzer is the atomicfield pass.
var Analyzer = &lintkit.Analyzer{
	Name: "atomicfield",
	Doc:  "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	census := map[types.Object]token.Position{}
	for _, pkg := range pass.All {
		if !pkg.Target || pkg.Info == nil {
			continue
		}
		collect(pass.Fset, pkg, census)
	}
	if len(census) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		flag(pass, file, census)
	}
	return nil
}

// atomicAddr returns the expression whose address is handed to a
// sync/atomic call, or nil.
func atomicAddr(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := lintkit.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	switch {
	case strings.HasPrefix(fn.Name(), "Add"),
		strings.HasPrefix(fn.Name(), "Load"),
		strings.HasPrefix(fn.Name(), "Store"),
		strings.HasPrefix(fn.Name(), "Swap"),
		strings.HasPrefix(fn.Name(), "CompareAndSwap"):
	default:
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	if ua, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ua.Op == token.AND {
		return ua.X
	}
	return nil
}

// addrObject resolves the variable named by an addressable expression:
// a package-level var (x) or a struct field (s.F, possibly nested).
func addrObject(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	// Only fields and package-level vars carry cross-function sharing
	// obligations; a local used atomically is its own function's
	// business.
	if v.IsField() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return v
	}
	return nil
}

// collect records every variable atomically accessed in pkg.
func collect(fset *token.FileSet, pkg *lintkit.Package, census map[types.Object]token.Position) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if e := atomicAddr(pkg.Info, call); e != nil {
				if v := addrObject(pkg.Info, e); v != nil {
					if _, seen := census[v]; !seen {
						census[v] = fset.Position(call.Pos())
					}
				}
			}
			return true
		})
	}
}

// flag reports plain uses of censused variables in one file.
func flag(pass *lintkit.Pass, file *ast.File, census map[types.Object]token.Position) {
	info := pass.Pkg.Info

	// First mark sanctioned idents: the &x operand of atomic calls, and
	// the key side of composite-literal elements (naming a field in a
	// literal is not an access; reads in the value side still count).
	sanctioned := map[*ast.Ident]bool{}
	sanctionIdents := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				sanctioned[id] = true
			}
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if e := atomicAddr(info, n); e != nil {
				sanctionIdents(e)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						sanctioned[id] = true
					}
				}
			}
		}
		return true
	})

	// Map each selector's field ident to its base expression so field
	// accesses can be tested for sharedness.
	selBase := map[*ast.Ident]ast.Expr{}
	ast.Inspect(file, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selBase[sel.Sel] = sel.X
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || sanctioned[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		first, tracked := census[v]
		if !tracked {
			return true
		}
		// A field read off a value copy (snapshot-style APIs like
		// StatsSnapshot return one) touches private memory, not the
		// shared instance the atomic calls guard.
		if base, isField := selBase[id]; isField && !sharedExpr(info, base) {
			return true
		}
		pass.Reportf(id.Pos(), "non-atomic access to %s, which is accessed with sync/atomic (e.g. at %s); this races", v.Name(), first)
		return true
	})
}

// sharedExpr conservatively reports whether e denotes storage reachable
// by other goroutines: anything behind a pointer, a package-level var,
// or an element of a slice/map/array. Plain value copies (call results,
// local value variables, literals) are private. A local struct whose
// field address escaped to an atomic call is misclassified as private —
// the census sanctions those call sites themselves, and cross-goroutine
// sharing of locals requires taking an address we would see.
func sharedExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	// Selecting through a pointer dereferences it: shared.
	if tv, ok := info.Types[e]; ok {
		if _, ptr := tv.Type.Underlying().(*types.Pointer); ptr {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return true // conservative
		}
		if v.IsField() {
			return true // embedded-field shorthand inside a method
		}
		return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	case *ast.SelectorExpr:
		return sharedExpr(info, e.X)
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit:
		return false // a fresh value
	case *ast.TypeAssertExpr:
		return sharedExpr(info, e.X)
	default:
		return true // index, star, unary &, ...: assume shared
	}
}
