package atomicfield_test

import (
	"testing"

	"dkbms/internal/lint/atomicfield"
	"dkbms/internal/lint/lintkit"
)

func TestFixtures(t *testing.T) {
	lintkit.RunFixtures(t, atomicfield.Analyzer, "testdata/src")
}
