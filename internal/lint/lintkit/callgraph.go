package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a CHA-style call graph over the target packages of one
// load: one node per function declaration with a body, one edge per
// resolved call site. Static calls (plain functions, concrete methods)
// resolve exactly; calls through an interface fan out to every method
// of that name on a target-package type implementing the interface
// (class-hierarchy analysis — an over-approximation, since the call
// could only ever dispatch to types that actually flow there). Calls
// through function values and calls inside function literals are not
// resolved; DynamicSites counts them so a run can report how much of
// the program escapes the graph.
//
// The graph deliberately excludes call sites inside *ast.FuncLit
// bodies: a closure runs when something invokes the function value, not
// when its enclosing function executes, and attributing its calls to
// the encloser would poison held-region and summary analyses with work
// that may happen on another goroutine or not at all. This matches the
// flow analyzers' treatment of FuncLit and is documented as a soundness
// limit (DESIGN.md §14).
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	funcs []*FuncNode // deterministic order: by file position
	// DynamicSites counts call sites that resolve to no node: calls
	// through function values, builtins and conversions.
	DynamicSites int
	edges        int
}

// FuncNode is one declared function or method with a body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the node's resolved call sites in source order. One
	// *ast.CallExpr appears once per CHA candidate.
	Calls []CallSite
}

// CallSite is one resolved edge origin.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the resolved target; it may or may not have a body in a
	// target package (stdlib callees resolve but have no FuncNode).
	Callee *types.Func
	// CHA marks an interface-dispatch candidate rather than a static
	// resolution.
	CHA bool
}

// Node returns the graph node for fn, or nil when fn has no body in a
// target package.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Funcs returns every node in deterministic (position) order.
func (g *CallGraph) Funcs() []*FuncNode { return g.funcs }

// NumFuncs and NumEdges size the graph for -stats.
func (g *CallGraph) NumFuncs() int { return len(g.funcs) }
func (g *CallGraph) NumEdges() int { return g.edges }

// BuildCallGraph constructs the graph over every target package.
func BuildCallGraph(fset *token.FileSet, all []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}

	// Pass 1: one node per function declaration with a body.
	for _, pkg := range all {
		if !pkg.Target || pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}

	// CHA index: every named type declared in a target package, for
	// interface-call fan-out.
	var chaTypes []*types.Named
	for _, pkg := range all {
		if !pkg.Target || pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				chaTypes = append(chaTypes, named)
			}
		}
	}

	// Pass 2: resolve call sites, skipping FuncLit bodies.
	for _, node := range g.nodes {
		g.resolveCalls(node)
	}

	g.funcs = make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		g.funcs = append(g.funcs, n)
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Decl.Pos() < g.funcs[j].Decl.Pos() })

	// CHA expansion runs after static resolution so DynamicSites only
	// counts truly unresolvable sites.
	for _, n := range g.funcs {
		g.expandInterfaceCalls(n, chaTypes)
	}
	return g
}

// resolveCalls records the statically-resolvable call sites of a node.
func (g *CallGraph) resolveCalls(node *FuncNode) {
	info := node.Pkg.Info
	walkSkipFuncLit(node.Decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := Callee(info, call)
		if fn == nil {
			// Builtins and conversions are not calls through values;
			// only count sites whose Fun is a value expression.
			if isDynamicCall(info, call) {
				g.DynamicSites++
			}
			return
		}
		node.Calls = append(node.Calls, CallSite{Call: call, Callee: fn})
		g.edges++
	})
}

// expandInterfaceCalls adds CHA candidates for call sites whose static
// callee is an interface method: every same-named method on a
// target-package type implementing the interface.
func (g *CallGraph) expandInterfaceCalls(node *FuncNode, chaTypes []*types.Named) {
	var extra []CallSite
	for _, cs := range node.Calls {
		iface := interfaceRecv(cs.Callee)
		if iface == nil {
			continue
		}
		for _, named := range chaTypes {
			var impl types.Type = named
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(named)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, cs.Callee.Pkg(), cs.Callee.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if m.Name() != cs.Callee.Name() {
				continue
			}
			if g.nodes[m] == nil {
				continue // no body in a target package: nothing to walk into
			}
			extra = append(extra, CallSite{Call: cs.Call, Callee: m, CHA: true})
		}
	}
	node.Calls = append(node.Calls, extra...)
	g.edges += len(extra)
}

// interfaceRecv returns the interface type of an abstract method's
// receiver, or nil for concrete methods and plain functions.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// isDynamicCall reports whether call invokes a function value (as
// opposed to a builtin or a type conversion).
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		switch obj.(type) {
		case *types.Var:
			return true // a function-typed variable or parameter
		case *types.Builtin, *types.TypeName, nil:
			return false
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			return true // a function-typed struct field
		}
		return false
	case *ast.FuncLit:
		return true // immediately-invoked literal; body walked separately? no — skipped
	default:
		return true // call of an arbitrary expression
	}
}

// walkSkipFuncLit visits every node of body except the bodies of
// nested function literals.
func walkSkipFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// Reachable computes, for a seed predicate over nodes, the set of
// functions from which a seed function is reachable through the graph
// (callers of seeds, transitively). It is the shared fix-point used by
// the interprocedural analyzers' "may reach" summaries. The returned
// map carries, per function, one witness path (callee chain) to the
// seed for diagnostics.
func (g *CallGraph) Reachable(seed func(*FuncNode) bool) map[*types.Func][]*types.Func {
	out := make(map[*types.Func][]*types.Func)
	for _, n := range g.funcs {
		if seed(n) {
			out[n.Fn] = nil
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.funcs {
			if _, done := out[n.Fn]; done {
				continue
			}
			for _, cs := range n.Calls {
				chain, ok := out[cs.Callee]
				if !ok {
					continue
				}
				witness := append([]*types.Func{cs.Callee}, chain...)
				out[n.Fn] = witness
				changed = true
				break
			}
		}
	}
	return out
}

// PosOf is a small helper for deterministic diagnostics.
func PosOf(fset *token.FileSet, n ast.Node) token.Position { return fset.Position(n.Pos()) }
