// Package lintkit is the foundation of the dkblint analyzer suite: a
// deliberately small, dependency-free re-creation of the parts of
// golang.org/x/tools/go/analysis that the suite needs. The module's
// build environment has no network access to fetch x/tools, so the kit
// mirrors its Analyzer/Pass shape closely enough that the analyzers
// could be ported to the real framework by swapping imports.
//
// The kit provides three things:
//
//   - a package loader (load.go) that shells out to `go list -json
//     -deps` and type-checks the result from source with go/types,
//     skipping function bodies of dependency packages for speed;
//   - a statement-level control-flow graph builder (cfg.go) used by the
//     flow-sensitive analyzers (pinpair, lockscope);
//   - a fixture runner (fixture.go) in the spirit of analysistest: a
//     testdata/src tree of small packages annotated with `// want`
//     comments.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects pass.Pkg and reports
// findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	// Types and Info are nil only if type checking failed entirely.
	Types *types.Package
	Info  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies); analyzers run over targets only.
	Target bool
	// TypeErrors collects soft type-check errors (analysis proceeds on
	// the partial information).
	TypeErrors []error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// All lists every target package of the run, so analyzers that need
	// module-wide facts (atomicfield's atomic-access census) can collect
	// them without a separate facts protocol.
	All []*Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each target package and returns the
// findings in source order.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if !pkg.Target || pkg.Types == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				All:      pkgs,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && lessDiag(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// --- shared type-query helpers ---

// Callee resolves the called function or method object of a call, or
// nil for calls through function values, built-ins and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverTypeName returns the named type of a method's receiver (minus
// any pointer indirection), or "" for plain functions.
func ReceiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// PkgName returns the name of the package declaring fn ("" for
// builtins).
func PkgName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsMethod reports whether call invokes a method with the given name on
// the named type declared in a package with the given name. Matching is
// by name, not import path, so fixtures can stand in for the real
// packages.
func IsMethod(info *types.Info, call *ast.CallExpr, pkg, typ, method string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	return PkgName(fn) == pkg && ReceiverTypeName(fn) == typ
}

// IsFunc reports whether call invokes the named package-level function.
func IsFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	return PkgName(fn) == pkg && ReceiverTypeName(fn) == ""
}
