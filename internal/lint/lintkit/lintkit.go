// Package lintkit is the foundation of the dkblint analyzer suite: a
// deliberately small, dependency-free re-creation of the parts of
// golang.org/x/tools/go/analysis that the suite needs. The module's
// build environment has no network access to fetch x/tools, so the kit
// mirrors its Analyzer/Pass shape closely enough that the analyzers
// could be ported to the real framework by swapping imports.
//
// The kit provides three things:
//
//   - a package loader (load.go) that shells out to `go list -json
//     -deps` and type-checks the result from source with go/types,
//     skipping function bodies of dependency packages for speed;
//   - a statement-level control-flow graph builder (cfg.go) used by the
//     flow-sensitive analyzers (pinpair, lockscope);
//   - a fixture runner (fixture.go) in the spirit of analysistest: a
//     testdata/src tree of small packages annotated with `// want`
//     comments.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects pass.Pkg and reports
// findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Module marks a whole-program analyzer: Run is invoked exactly once
	// per load with Pass.Pkg == nil and Pass.All holding every package.
	// Analyzers that build global structures (the lock-order graph) use
	// this instead of a per-package pass.
	Module bool
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	// Types and Info are nil only if type checking failed entirely.
	Types *types.Package
	Info  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies); analyzers run over targets only.
	Target bool
	// TypeErrors collects soft type-check errors (analysis proceeds on
	// the partial information).
	TypeErrors []error
}

// Pass carries one analyzer's view of one package (or, for Module
// analyzers, of the whole load — Pkg is nil then).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// All lists every target package of the run, so analyzers that need
	// module-wide facts (atomicfield's atomic-access census) can collect
	// them without a separate facts protocol.
	All []*Package
	// Cache is shared by every pass of one Run call: expensive
	// module-wide structures (the call graph) are built once and reused
	// across analyzers; main reads them back for -stats.
	Cache *Cache

	report func(Diagnostic)
}

// Cache holds per-run shared facts, built lazily on first use.
type Cache struct {
	cg    *CallGraph
	extra map[string]any
}

// NewCache returns an empty per-run cache.
func NewCache() *Cache { return &Cache{extra: make(map[string]any)} }

// CallGraph returns the run's CHA call graph over the target packages,
// building it on first call.
func (c *Cache) CallGraph(fset *token.FileSet, all []*Package) *CallGraph {
	if c.cg == nil {
		c.cg = BuildCallGraph(fset, all)
	}
	return c.cg
}

// BuiltCallGraph returns the call graph if some analyzer built one
// (nil otherwise) — for -stats reporting without forcing a build.
func (c *Cache) BuiltCallGraph() *CallGraph { return c.cg }

// Store saves an analyzer-published fact under a key (e.g. the
// lock-order graph, for -stats and the module pin test).
func (c *Cache) Store(key string, v any) { c.extra[key] = v }

// Load returns a stored fact, or nil.
func (c *Cache) Load(key string) any { return c.extra[key] }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each target package and returns the
// findings in source order.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithCache(fset, pkgs, analyzers, NewCache())
}

// RunWithCache is Run with a caller-provided fact cache, so the caller
// can read back module-wide structures (call-graph sizes, the lock
// graph) after the run.
func RunWithCache(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cache *Cache) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Module {
			pass := &Pass{Analyzer: a, Fset: fset, All: pkgs, Cache: cache, report: report}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			if !pkg.Target || pkg.Types == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				All:      pkgs,
				Cache:    cache,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && lessDiag(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// --- shared type-query helpers ---

// Callee resolves the called function or method object of a call, or
// nil for calls through function values, built-ins and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverTypeName returns the named type of a method's receiver (minus
// any pointer indirection), or "" for plain functions.
func ReceiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// PkgName returns the name of the package declaring fn ("" for
// builtins).
func PkgName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsMethod reports whether call invokes a method with the given name on
// the named type declared in a package with the given name. Matching is
// by name, not import path, so fixtures can stand in for the real
// packages.
func IsMethod(info *types.Info, call *ast.CallExpr, pkg, typ, method string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	return PkgName(fn) == pkg && ReceiverTypeName(fn) == typ
}

// IsFunc reports whether call invokes the named package-level function.
func IsFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	return PkgName(fn) == pkg && ReceiverTypeName(fn) == ""
}
