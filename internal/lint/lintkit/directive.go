package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //dkblint:... comment. The suite's directive
// grammar, shared by every analyzer:
//
//	//dkblint:<name>                 (flag directive)
//	//dkblint:<name>=<value>         (valued directive, e.g. payload=ServerStats)
//	//dkblint:<name> <justification> (waiver with its reason)
//
// Waiver directives (bounded, locksafe, pinsafe, ctxok) cover the
// directive's own line and the line below it, so both end-of-line and
// standalone-comment placements work. The directives analyzer rejects
// unknown names and waivers with no justification, so a misspelled
// waiver fails the build instead of silently not waiving.
type Directive struct {
	Name  string
	Value string // after '=', for valued directives
	Arg   string // trailing justification text
	Pos   token.Pos
	Line  int
}

// DirectiveSpec describes one known directive for the registry (and
// `dkblint -directives`).
type DirectiveSpec struct {
	Name     string
	Analyzer string
	// Valued directives take `=<value>`; waivers take a trailing
	// justification, which NeedsJustification makes mandatory.
	Valued             bool
	NeedsJustification bool
	Doc                string
}

// Directives is the registry of every directive the suite understands,
// in listing order.
var Directives = []DirectiveSpec{
	{Name: "bounded", Analyzer: "gofanout", NeedsJustification: true,
		Doc: "waive a `go` launch inside a loop whose fan-out is intrinsically fixed"},
	{Name: "locksafe", Analyzer: "lockorder", NeedsJustification: true,
		Doc: "waive lock-order and blocking findings for the lock acquired on this or the next line"},
	{Name: "pinsafe", Analyzer: "pinleak", NeedsJustification: true,
		Doc: "waive the release obligation of the pin/ticket acquired on this or the next line"},
	{Name: "ctxok", Analyzer: "ctxflow", NeedsJustification: true,
		Doc: "waive an unbounded loop on this or the next line that terminates by other means"},
	{Name: "nopayload", Analyzer: "opcodecheck",
		Doc: "declare a wire opcode as payload-less"},
	{Name: "payload", Analyzer: "opcodecheck", Valued: true,
		Doc: "declare a wire opcode's irregular payload type name (payload=Name)"},
}

// DirectiveSpecFor returns the registry entry for name, or nil.
func DirectiveSpecFor(name string) *DirectiveSpec {
	for i := range Directives {
		if Directives[i].Name == name {
			return &Directives[i]
		}
	}
	return nil
}

// ParseDirective decodes one comment's text, or returns false when the
// comment is not a //dkblint: directive at all.
func ParseDirective(text string) (Directive, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//dkblint:")
	if !ok {
		return Directive{}, false
	}
	d := Directive{}
	// Name runs to the first whitespace; a '=' inside it splits a value.
	head := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		head = rest[:i]
		d.Arg = strings.TrimSpace(rest[i+1:])
	}
	// An embedded "//" starts a trailing comment (fixture `// want`
	// annotations ride there); it is not part of the justification.
	if i := strings.Index(d.Arg, "//"); i >= 0 {
		d.Arg = strings.TrimSpace(d.Arg[:i])
	}
	if eq := strings.IndexByte(head, '='); eq >= 0 {
		d.Name, d.Value = head[:eq], head[eq+1:]
	} else {
		d.Name = head
	}
	return d, true
}

// FileDirectives returns every //dkblint: directive in a file, in
// source order, with positions resolved.
func FileDirectives(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := ParseDirective(c.Text)
			if !ok {
				continue
			}
			d.Pos = c.Pos()
			d.Line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// WaivedLines maps line numbers covered by the named waiver directive
// (its own line and the one below) to the waiver's justification text.
// A waiver with no justification still waives — the directives analyzer
// reports the missing justification separately, so the finding surfaces
// exactly once.
func WaivedLines(fset *token.FileSet, file *ast.File, name string) map[int]string {
	lines := map[int]string{}
	for _, d := range FileDirectives(fset, file) {
		if d.Name != name {
			continue
		}
		lines[d.Line] = d.Arg
		lines[d.Line+1] = d.Arg
	}
	return lines
}
