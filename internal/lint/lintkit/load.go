package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// loader type-checks a dependency-ordered package list from source. It
// implements types.Importer over the packages loaded so far.
type loader struct {
	fset *token.FileSet
	pkgs map[string]*Package
}

// Import satisfies types.Importer. The standard library vendors some
// golang.org/x packages under "vendor/", and source files import them by
// the unvendored path, so that spelling is tried as a fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	if p, ok := l.pkgs["vendor/"+path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("lintkit: package %q not loaded", path)
}

// Load lists patterns (and their dependency closure) with the go tool,
// parses every package and type-checks them from source in dependency
// order. dir is the directory to run `go list` in (any directory inside
// the module under analysis). Packages matching the patterns are marked
// Target; dependency packages are type-checked with function bodies
// ignored, which keeps loading the full standard-library closure cheap.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo-free file sets: go/types needs no C toolchain, and the pure-Go
	// fallbacks of net/os-user are fully checkable from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintkit: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintkit: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	l := &loader{fset: fset, pkgs: make(map[string]*Package, len(listed))}
	var result []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lintkit: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		l.pkgs[lp.ImportPath] = pkg
		result = append(result, pkg)
	}
	return result, nil
}

// check parses and type-checks one listed package. go list -deps emits
// dependencies before dependents, so imports resolve from l.pkgs.
func (l *loader) check(lp *listPackage) (*Package, error) {
	pkg := &Package{
		Path:   lp.ImportPath,
		Name:   lp.Name,
		Dir:    lp.Dir,
		Target: !lp.DepOnly,
	}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if lp.DepOnly {
				continue // tolerate oddities outside the analyzed module
			}
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	typed, info, errs := TypeCheck(l.fset, lp.ImportPath, pkg.Files, l, lp.DepOnly)
	pkg.Types, pkg.Info = typed, info
	pkg.TypeErrors = errs
	if !lp.DepOnly && len(errs) > 0 {
		return nil, fmt.Errorf("lintkit: type-checking %s: %v", lp.ImportPath, errs[0])
	}
	return pkg, nil
}

// TypeCheck runs go/types over parsed files. Soft errors are collected
// rather than aborting so dependency packages with platform quirks
// still surface their exported API.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, depOnly bool) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer:         imp,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		IgnoreFuncBodies: depOnly,
		FakeImportC:      true,
		Error:            func(err error) { errs = append(errs, err) },
	}
	var info *types.Info
	if !depOnly {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	typed, _ := conf.Check(path, fset, files, info)
	return typed, info, errs
}
