package lintkit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixtures is the kit's analysistest: it loads every package under
// root (conventionally the analyzer's testdata/src directory), runs the
// analyzer over all of them, and compares the diagnostics against
// `// want "regexp"` comments in the fixture sources. A line may carry
// several quoted patterns; each must match exactly one diagnostic on
// that line. Fixture packages may import each other by directory name
// and may import the standard library.
func RunFixtures(t *testing.T, a *Analyzer, root string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := loadFixtureTree(fset, root)
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	diags, err := Run(fset, pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, fset, pkgs, diags)
}

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	pos     token.Position
	pattern *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, fset.Position(c.Pos()), c.Text)...)
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].pos.Filename != wants[j].pos.Filename {
			return wants[i].pos.Filename < wants[j].pos.Filename
		}
		return wants[i].pos.Line < wants[j].pos.Line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.pattern)
		}
	}
}

// parseWants extracts the quoted patterns of a `// want "..." "..."`
// comment.
func parseWants(t *testing.T, pos token.Position, text string) []*expectation {
	t.Helper()
	idx := strings.Index(text, "want ")
	if !strings.HasPrefix(text, "//") || idx < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[idx+len("want "):])
	var out []*expectation
	for rest != "" {
		if rest[0] != '"' {
			t.Errorf("%s: malformed want comment at %q", pos, rest)
			return out
		}
		end := 1
		for end < len(rest) && rest[end] != '"' {
			if rest[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(rest) {
			t.Errorf("%s: unterminated want pattern", pos)
			return out
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Errorf("%s: bad want pattern %s: %v", pos, rest[:end+1], err)
			return out
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
			return out
		}
		out = append(out, &expectation{pos: pos, pattern: re})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}

// loadFixtureTree parses and type-checks every package directory under
// root. The import path of a fixture package is its path relative to
// root; standard-library imports are satisfied by a real Load rooted at
// the current directory (which sits inside the module).
func loadFixtureTree(fset *token.FileSet, root string) ([]*Package, error) {
	dirs := map[string][]string{} // rel import path -> go files
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		dirs[key] = append(dirs[key], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Parse everything first so imports can be resolved in two passes.
	type fixturePkg struct {
		path   string
		files  []*ast.File
		locals []string // imports of other fixture packages
	}
	fixtureByPath := map[string]*fixturePkg{}
	var fixtures []*fixturePkg
	stdImports := map[string]bool{}
	for path, files := range dirs {
		sort.Strings(files)
		fp := &fixturePkg{path: path}
		for _, fname := range files {
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			fp.files = append(fp.files, f)
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if _, local := dirs[p]; local {
					fp.locals = append(fp.locals, p)
				} else if p != "" {
					stdImports[p] = true
				}
			}
		}
		fixtureByPath[path] = fp
		fixtures = append(fixtures, fp)
	}
	sort.Slice(fixtures, func(i, j int) bool { return fixtures[i].path < fixtures[j].path })

	// Satisfy external (standard-library) imports with the real loader.
	imp := &fixtureImporter{known: map[string]*types.Package{}}
	if len(stdImports) > 0 {
		patterns := make([]string, 0, len(stdImports))
		for p := range stdImports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		std, err := Load(fset, ".", patterns...)
		if err != nil {
			return nil, fmt.Errorf("loading fixture std deps: %w", err)
		}
		for _, p := range std {
			if p.Types != nil {
				imp.known[p.Path] = p.Types
			}
		}
	}

	// Type-check fixtures in local-dependency order.
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(fp *fixturePkg) error
	visit = func(fp *fixturePkg) error {
		switch state[fp.path] {
		case 1:
			return fmt.Errorf("fixture import cycle through %s", fp.path)
		case 2:
			return nil
		}
		state[fp.path] = 1
		for _, dep := range fp.locals {
			if err := visit(fixtureByPath[dep]); err != nil {
				return err
			}
		}
		typed, info, errs := TypeCheck(fset, fp.path, fp.files, imp, false)
		if len(errs) > 0 {
			return fmt.Errorf("type-checking fixture %s: %v", fp.path, errs[0])
		}
		imp.known[fp.path] = typed
		out = append(out, &Package{
			Path:   fp.path,
			Name:   typed.Name(),
			Files:  fp.files,
			Types:  typed,
			Info:   info,
			Target: true,
		})
		state[fp.path] = 2
		return nil
	}
	for _, fp := range fixtures {
		if err := visit(fp); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// fixtureImporter resolves imports from a fixed map.
type fixtureImporter struct {
	known map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := fi.known[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("fixture import %q not available", path)
}
