package lintkit

import (
	"go/ast"
	"go/types"
)

// MutexOp is one Lock/RLock/Unlock/RUnlock call on a sync.Mutex or
// sync.RWMutex, decoded for the lock analyzers (lockscope's pairing
// checks, lockorder's acquisition-order graph).
type MutexOp struct {
	Call *ast.CallExpr
	Op   string // Lock, RLock, Unlock, RUnlock
	// Recv is types.ExprString of the mutex expression, for pairing an
	// acquire with its release inside one function.
	Recv string
	// Owner of the mutex when it is a struct field (c.mu, p.flMu, ...):
	// the declaring package and type names and the field name. A
	// package-level mutex var sets OwnerPkg and Field (no OwnerTyp);
	// local mutex variables leave all three empty.
	OwnerPkg, OwnerTyp, Field string
}

// Acquires reports whether the op takes the lock.
func (op *MutexOp) Acquires() bool { return op.Op == "Lock" || op.Op == "RLock" }

// ClassID returns the lock's class identity for the global lock-order
// graph — "pkg.Type.field" for struct-field mutexes, "pkg.var" for
// package-level ones — or "" for local mutex variables, which have no
// stable cross-function identity and stay out of the graph.
func (op *MutexOp) ClassID() string {
	switch {
	case op.OwnerTyp != "":
		return op.OwnerPkg + "." + op.OwnerTyp + "." + op.Field
	case op.OwnerPkg != "":
		return op.OwnerPkg + "." + op.Field
	}
	return ""
}

// UnlockFor maps an acquire op name to its release op name.
func UnlockFor(op string) string {
	if op == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// AsMutexOp decodes a call as a mutex operation, or returns nil.
func AsMutexOp(info *types.Info, call *ast.CallExpr) *MutexOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil
	}
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	switch ReceiverTypeName(fn) {
	case "Mutex", "RWMutex":
	default:
		return nil
	}
	op := &MutexOp{Call: call, Op: sel.Sel.Name, Recv: types.ExprString(sel.X)}
	// Resolve the owning struct when the mutex is a field; a
	// package-level var resolves to its declaring package.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && v.Pkg() != nil {
				op.Field = v.Name()
				op.OwnerPkg = v.Pkg().Name()
				t := s.Recv()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					op.OwnerTyp = named.Obj().Name()
				}
			}
		} else if id, ok := x.X.(*ast.Ident); ok {
			// pkg.muVar.Lock(): a package-qualified top-level mutex.
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					op.Field = v.Name()
					op.OwnerPkg = v.Pkg().Name()
				}
			}
		}
	case *ast.Ident:
		// A bare identifier: a package-level mutex in the same package,
		// or a local variable (left untracked).
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			op.Field = v.Name()
			op.OwnerPkg = v.Pkg().Name()
		}
	}
	return op
}
