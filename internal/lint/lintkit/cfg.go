package lintkit

import (
	"go/ast"
	"go/token"
)

// CFG is a statement-level control-flow graph of one function body,
// precise enough for the suite's reachability questions ("can control
// reach an exit from this node without passing a release?"). Expression
// short-circuiting is not modeled: a whole statement is one node, which
// is the right granularity for resource-pairing checks.
type CFG struct {
	Entry *Block
	// Exit is the single synthetic exit block; every return and the
	// fall-off-the-end path lead to it.
	Exit *Block
	// Unsupported is set when the body uses goto or labeled branches,
	// which the builder does not model; analyzers should then skip the
	// function rather than risk wrong edges.
	Unsupported bool
	blocks      []*Block
	conds       map[edge]EdgeCond
}

type edge struct{ from, to *Block }

// EdgeCond annotates an if-branch edge with the branch condition, so
// analyses can prune paths (e.g. the `err != nil` branch right after an
// acquisition that failed cannot hold the resource).
type EdgeCond struct {
	Cond    ast.Expr
	Negated bool // true on the else/fall-through edge
}

// Block is a straight-line run of statements with successor edges.
type Block struct {
	Nodes []ast.Stmt
	Succs []*Block
}

// Blocks returns all blocks (diagnostics/tests).
func (g *CFG) Blocks() []*Block { return g.blocks }

// BuildCFG constructs the graph for a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{conds: make(map[edge]EdgeCond)}
	g.Exit = g.newBlock()
	b := builder{g: g}
	g.Entry = g.newBlock()
	last := b.stmts(g.Entry, body.List)
	if last != nil {
		last.Succs = append(last.Succs, g.Exit) // fall off the end
	}
	return g
}

func (g *CFG) newBlock() *Block {
	blk := &Block{}
	g.blocks = append(g.blocks, blk)
	return blk
}

// builder tracks the innermost break/continue targets while walking.
type builder struct {
	g          *CFG
	breakDst   []*Block // stack: where `break` jumps (loops and switches)
	continDst  []*Block // stack: where `continue` jumps (loops only)
	breakIsFor []bool   // parallel to breakDst: true when the target belongs to a loop
}

// stmts appends the list to cur, splitting blocks at control flow, and
// returns the block that control falls out of (nil if the list always
// diverges).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; ignore.
			return nil
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Succs = append(cur.Succs, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		if s.Label != nil || s.Tok == token.GOTO {
			b.g.Unsupported = true
			return nil
		}
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if n := len(b.breakDst); n > 0 {
				cur.Succs = append(cur.Succs, b.breakDst[n-1])
			}
		case token.CONTINUE:
			if n := len(b.continDst); n > 0 {
				cur.Succs = append(cur.Succs, b.continDst[n-1])
			}
		case token.FALLTHROUGH:
			// Handled by the switch construction (next clause edge).
			return cur
		}
		return nil

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		// Init and Cond evaluate in the current block.
		cur.Nodes = append(cur.Nodes, s)
		after := b.g.newBlock()
		then := b.g.newBlock()
		cur.Succs = append(cur.Succs, then)
		b.g.conds[edge{cur, then}] = EdgeCond{Cond: s.Cond}
		if out := b.stmts(then, s.Body.List); out != nil {
			out.Succs = append(out.Succs, after)
		}
		if s.Else != nil {
			els := b.g.newBlock()
			cur.Succs = append(cur.Succs, els)
			b.g.conds[edge{cur, els}] = EdgeCond{Cond: s.Cond, Negated: true}
			if out := b.stmt(els, s.Else); out != nil {
				out.Succs = append(out.Succs, after)
			}
		} else {
			cur.Succs = append(cur.Succs, after)
			b.g.conds[edge{cur, after}] = EdgeCond{Cond: s.Cond, Negated: true}
		}
		return after

	case *ast.ForStmt:
		cur.Nodes = append(cur.Nodes, s) // init+cond evaluation site
		head := b.g.newBlock()
		body := b.g.newBlock()
		after := b.g.newBlock()
		cur.Succs = append(cur.Succs, head)
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, after) // condition false
		}
		b.pushLoop(after, head)
		out := b.stmts(body, s.Body.List)
		b.popLoop()
		if out != nil {
			out.Succs = append(out.Succs, head) // back edge
		}
		return after

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, s)
		head := b.g.newBlock()
		body := b.g.newBlock()
		after := b.g.newBlock()
		cur.Succs = append(cur.Succs, head)
		head.Succs = append(head.Succs, body, after)
		b.pushLoop(after, head)
		out := b.stmts(body, s.Body.List)
		b.popLoop()
		if out != nil {
			out.Succs = append(out.Succs, head)
		}
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s, s.Body, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s, s.Body, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		cur.Nodes = append(cur.Nodes, s)
		after := b.g.newBlock()
		b.pushSwitch(after)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			body := b.g.newBlock()
			cur.Succs = append(cur.Succs, body)
			if out := b.stmts(body, cc.Body); out != nil {
				out.Succs = append(out.Succs, after)
			}
		}
		b.popSwitch()
		if len(s.Body.List) == 0 {
			return nil // empty select blocks forever
		}
		return after

	case *ast.LabeledStmt:
		b.g.Unsupported = true
		return nil

	default:
		// Declarations, assignments, expression statements, defer, go,
		// send, inc/dec: straight-line nodes.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchStmt builds edges for expression and type switches. fallthrough
// is modeled by an edge from a clause's fall-out to the next clause.
func (b *builder) switchStmt(cur *Block, s ast.Stmt, body *ast.BlockStmt, hasDefault bool) *Block {
	cur.Nodes = append(cur.Nodes, s)
	after := b.g.newBlock()
	b.pushSwitch(after)
	clauseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.g.newBlock()
		cur.Succs = append(cur.Succs, clauseBlocks[i])
	}
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		out := b.stmts(clauseBlocks[i], cc.Body)
		if out != nil {
			if fallsThrough(cc.Body) && i+1 < len(clauseBlocks) {
				out.Succs = append(out.Succs, clauseBlocks[i+1])
			} else {
				out.Succs = append(out.Succs, after)
			}
		}
	}
	b.popSwitch()
	if !hasDefault {
		cur.Succs = append(cur.Succs, after) // no clause matched
	}
	return after
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breakDst = append(b.breakDst, brk)
	b.breakIsFor = append(b.breakIsFor, true)
	b.continDst = append(b.continDst, cont)
}

func (b *builder) popLoop() {
	b.breakDst = b.breakDst[:len(b.breakDst)-1]
	b.breakIsFor = b.breakIsFor[:len(b.breakIsFor)-1]
	b.continDst = b.continDst[:len(b.continDst)-1]
}

func (b *builder) pushSwitch(brk *Block) {
	b.breakDst = append(b.breakDst, brk)
	b.breakIsFor = append(b.breakIsFor, false)
}

func (b *builder) popSwitch() {
	b.breakDst = b.breakDst[:len(b.breakDst)-1]
	b.breakIsFor = b.breakIsFor[:len(b.breakIsFor)-1]
}

// ReachesExitWithout performs the suite's core flow query: starting
// immediately after node `from` (which must appear in the graph), can
// control reach the exit along a path on which `release` never returns
// true for any intervening node? If so it returns the first offending
// exit-causing statement (a return, or nil for fall-off-the-end /
// loop-reentry leaks), with found=true.
//
// The `kill` callback, checked before release, lets callers stop a path
// for other reasons (e.g. the resource escaping); killed paths are not
// leaks. The optional `skipEdge` callback receives the condition label
// of if-branch edges and may prune branches that cannot hold the
// resource (e.g. the failure branch of the acquisition's error check).
func (g *CFG) ReachesExitWithout(from ast.Stmt, release, kill func(ast.Stmt) bool, skipEdge func(EdgeCond) bool) (leakAt ast.Stmt, found bool) {
	var startBlock *Block
	startIdx := -1
	for _, blk := range g.blocks {
		for i, n := range blk.Nodes {
			if n == from {
				startBlock, startIdx = blk, i
				break
			}
		}
		if startBlock != nil {
			break
		}
	}
	if startBlock == nil {
		return nil, false
	}

	visited := make(map[*Block]bool)
	var walk func(blk *Block, idx int) (ast.Stmt, bool)
	walk = func(blk *Block, idx int) (ast.Stmt, bool) {
		for i := idx; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if n == from {
				// The walk starts after `from`, so encountering it again
				// means a back edge led here: the resource is still live
				// at its own re-acquisition and the old one leaks.
				return n, true
			}
			if kill != nil && kill(n) {
				return nil, false
			}
			if release(n) {
				return nil, false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				return ret, true
			}
		}
		for _, succ := range blk.Succs {
			if skipEdge != nil {
				if ec, ok := g.conds[edge{blk, succ}]; ok && skipEdge(ec) {
					continue
				}
			}
			if succ == g.Exit {
				// Fall-off-the-end (or implicit return) while live.
				var at ast.Stmt
				if len(blk.Nodes) > 0 {
					at = blk.Nodes[len(blk.Nodes)-1]
				}
				return at, true
			}
			if visited[succ] {
				continue
			}
			visited[succ] = true
			if at, leak := walk(succ, 0); leak {
				return at, true
			}
		}
		return nil, false
	}
	return walk(startBlock, startIdx+1)
}

// VisitFrom walks the graph starting immediately after `from` (or from
// the entry block when from is nil), invoking visit on every node
// reachable before a node for which stop returns true. stop is
// evaluated on a node before visit, and a stopping node is neither
// visited nor walked past. Each node is visited at most once.
func (g *CFG) VisitFrom(from ast.Stmt, stop func(ast.Stmt) bool, visit func(ast.Stmt)) {
	startBlock := g.Entry
	startIdx := -1
	if from != nil {
		startBlock = nil
		for _, blk := range g.blocks {
			for i, n := range blk.Nodes {
				if n == from {
					startBlock, startIdx = blk, i
					break
				}
			}
			if startBlock != nil {
				break
			}
		}
		if startBlock == nil {
			return
		}
	}
	visited := make(map[*Block]bool)
	var walk func(blk *Block, idx int)
	walk = func(blk *Block, idx int) {
		for i := idx; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if stop != nil && stop(n) {
				return
			}
			visit(n)
		}
		for _, succ := range blk.Succs {
			if succ == g.Exit || visited[succ] {
				continue
			}
			visited[succ] = true
			walk(succ, 0)
		}
	}
	walk(startBlock, startIdx+1)
}

// Headline returns the parts of a statement that execute at the
// statement's own position in the CFG. Compound statements (if, for,
// switch, …) appear as single nodes whose bodies live in other blocks,
// so flow callbacks must inspect only these headline expressions, never
// the full subtree.
func Headline(s ast.Stmt) []ast.Node {
	var out []ast.Node
	add := func(ns ...ast.Node) {
		for _, n := range ns {
			if n != nil {
				out = append(out, n)
			}
		}
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		add(s.Init, s.Cond)
	case *ast.ForStmt:
		add(s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		add(s.Key, s.Value, s.X)
	case *ast.SwitchStmt:
		add(s.Init, s.Tag)
	case *ast.TypeSwitchStmt:
		add(s.Init, s.Assign)
	case *ast.SelectStmt:
		// Communication clauses execute in their own blocks.
	case *ast.LabeledStmt:
		// Unsupported by the builder anyway.
	default:
		add(s)
	}
	return out
}
