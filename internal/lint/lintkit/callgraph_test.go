package lintkit

import (
	"go/token"
	"path/filepath"
	"testing"
)

// TestCallGraph pins the shape of the CHA call graph over the cg
// fixture: exact node set, exact edge multiset, dynamic-site count, and
// the caller-side reachability fix-point.
func TestCallGraph(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := loadFixtureTree(fset, filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := BuildCallGraph(fset, pkgs)

	wantNodes := map[string]bool{
		"A.Run": true, "B.Run": true, "helper": true,
		"Static": true, "Dispatch": true, "Dynamic": true, "WithClosure": true,
	}
	gotNodes := map[string]bool{}
	for _, n := range g.Funcs() {
		gotNodes[nodeLabel(n)] = true
	}
	if len(gotNodes) != len(wantNodes) {
		t.Errorf("nodes: got %v, want %v", gotNodes, wantNodes)
	}
	for n := range wantNodes {
		if !gotNodes[n] {
			t.Errorf("missing node %s", n)
		}
	}

	// Edge multiset: caller → callee. The Dispatch call site appears
	// three times: the interface method plus two CHA candidates.
	wantEdges := map[string]int{
		"A.Run → helper":   1,
		"Static → helper":  1,
		"Dispatch → Run":   1, // the abstract interface method
		"Dispatch → A.Run": 1, // CHA candidate
		"Dispatch → B.Run": 1, // CHA candidate
	}
	gotEdges := map[string]int{}
	total := 0
	for _, n := range g.Funcs() {
		for _, cs := range n.Calls {
			label := nodeLabel(n) + " → "
			if recv := ReceiverTypeName(cs.Callee); recv != "" && !cs.CHA {
				if iface := interfaceRecv(cs.Callee); iface != nil {
					label += cs.Callee.Name()
				} else {
					label += recv + "." + cs.Callee.Name()
				}
			} else if recv != "" {
				label += recv + "." + cs.Callee.Name()
			} else {
				label += cs.Callee.Name()
			}
			gotEdges[label]++
			total++
		}
	}
	if total != g.NumEdges() {
		t.Errorf("NumEdges() = %d, but %d call sites recorded", g.NumEdges(), total)
	}
	for e, n := range wantEdges {
		if gotEdges[e] != n {
			t.Errorf("edge %q: got %d, want %d (all: %v)", e, gotEdges[e], n, gotEdges)
		}
	}
	if len(gotEdges) != len(wantEdges) {
		t.Errorf("edges: got %v, want %v", gotEdges, wantEdges)
	}

	// Dynamic(f) calls f(); WithClosure calls fn(). The helper() call
	// inside the literal must NOT appear anywhere.
	if g.DynamicSites != 2 {
		t.Errorf("DynamicSites = %d, want 2", g.DynamicSites)
	}

	// Reachability to helper: through the static calls and the CHA edge,
	// but not through the function value in WithClosure.
	reach := g.Reachable(func(n *FuncNode) bool { return nodeLabel(n) == "helper" })
	gotReach := map[string]bool{}
	for _, n := range g.Funcs() {
		if _, ok := reach[n.Fn]; ok {
			gotReach[nodeLabel(n)] = true
		}
	}
	wantReach := map[string]bool{"helper": true, "Static": true, "A.Run": true, "Dispatch": true}
	if len(gotReach) != len(wantReach) {
		t.Errorf("reachable: got %v, want %v", gotReach, wantReach)
	}
	for n := range wantReach {
		if !gotReach[n] {
			t.Errorf("expected %s to reach helper", n)
		}
	}
}

func nodeLabel(n *FuncNode) string {
	if recv := ReceiverTypeName(n.Fn); recv != "" {
		return recv + "." + n.Fn.Name()
	}
	return n.Fn.Name()
}
