// Fixture for the call-graph unit test: static calls, interface
// dispatch (CHA fan-out), function-value calls (dynamic sites) and the
// function-literal exclusion.
package cg

type Runner interface{ Run() }

type A struct{}

func (A) Run() { helper() }

type B struct{}

func (*B) Run() {}

func helper() {}

func Static() { helper() }

// Dispatch calls through the interface: CHA adds A.Run and (*B).Run.
func Dispatch(r Runner) { r.Run() }

// Dynamic calls a function value: unresolvable, counted not edged.
func Dynamic(f func()) { f() }

// WithClosure: the call inside the literal is excluded from the graph;
// the call of the literal itself is a dynamic site.
func WithClosure() {
	fn := func() { helper() }
	fn()
}
