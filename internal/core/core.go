// Package core is the testbed's Knowledge Manager (paper §3.2): the
// Workspace D/KB Manager plus the compilation pipeline that turns a
// Horn-clause query into an executable evaluation program:
//
//	parse → gather relevant rules (workspace + stored D/KB) →
//	[magic-sets optimization] → PCG/clique analysis → evaluation order →
//	semantic checks (definedness, type inference) → code generation.
//
// The compiled Program is executed by internal/rtlib against the DBMS.
// Per-phase timings are recorded in CompileStats because the paper's
// Tests 1–3 measure exactly those components.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dkbms/internal/codegen"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/magic"
	"dkbms/internal/obs"
	"dkbms/internal/pcg"
	"dkbms/internal/rel"
	"dkbms/internal/typeinf"
)

// Workspace is the memory-resident D/KB the user edits before committing
// it to the stored D/KB (paper §3.1).
type Workspace struct {
	// rules are the workspace rules in entry order.
	rules []dlog.Clause
	// facts are ground facts awaiting Commit, grouped by predicate.
	facts map[string][]dlog.Clause
	// factTypes are the inferred column types of fact predicates.
	factTypes map[string][]rel.Type
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		facts:     make(map[string][]dlog.Clause),
		factTypes: make(map[string][]rel.Type),
	}
}

// AddClause inserts a parsed clause (rule or fact) into the workspace.
// Reserved predicate names (the compiled-query head and magic-set
// auxiliaries) are rejected.
func (w *Workspace) AddClause(c dlog.Clause) error {
	if err := checkUserPred(c.Head.Pred); err != nil {
		return err
	}
	for _, a := range c.Body {
		if err := checkUserPred(a.Pred); err != nil {
			return err
		}
	}
	if !c.RangeRestricted() {
		return fmt.Errorf("core: clause %q is not range-restricted", c.String())
	}
	if c.IsFact() {
		types := make([]rel.Type, c.Head.Arity())
		for i, t := range c.Head.Args {
			types[i] = t.Val.Kind
		}
		if have, ok := w.factTypes[c.Head.Pred]; ok {
			if len(have) != len(types) {
				return fmt.Errorf("core: fact %q has arity %d, earlier facts have %d", c.String(), len(types), len(have))
			}
			for i := range have {
				if have[i] != types[i] {
					return fmt.Errorf("core: fact %q column %d type differs from earlier facts", c.String(), i+1)
				}
			}
		} else {
			w.factTypes[c.Head.Pred] = types
		}
		w.facts[c.Head.Pred] = append(w.facts[c.Head.Pred], c)
		return nil
	}
	w.rules = append(w.rules, c)
	return nil
}

// AddSource parses and adds a program (clauses only; queries in the
// source are rejected — pose them via Compile).
func (w *Workspace) AddSource(src string) error {
	prog, err := dlog.ParseProgram(src)
	if err != nil {
		return err
	}
	if len(prog.Queries) > 0 {
		return fmt.Errorf("core: source contains a query; use Query instead")
	}
	for _, c := range prog.Clauses {
		if err := w.AddClause(c); err != nil {
			return err
		}
	}
	return nil
}

// Rules returns the workspace rules (callers must not mutate).
func (w *Workspace) Rules() []dlog.Clause { return w.rules }

// Facts returns workspace facts grouped by predicate.
func (w *Workspace) Facts() map[string][]dlog.Clause { return w.facts }

// FactTypes returns the inferred types of workspace fact predicates.
func (w *Workspace) FactTypes() map[string][]rel.Type { return w.factTypes }

// RulePreds returns the predicates defined by workspace rules, sorted.
func (w *Workspace) RulePreds() []string {
	set := make(map[string]bool)
	for _, c := range w.rules {
		set[c.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a workspace whose rule and fact containers are private
// copies of the receiver's. Clauses themselves are shared — they are
// immutable everywhere — so a clone is cheap. The snapshot commit path
// clones before mutating, leaving the original frozen inside published
// snapshots.
func (w *Workspace) Clone() *Workspace {
	c := &Workspace{
		rules:     append([]dlog.Clause(nil), w.rules...),
		facts:     make(map[string][]dlog.Clause, len(w.facts)),
		factTypes: make(map[string][]rel.Type, len(w.factTypes)),
	}
	for p, cs := range w.facts {
		c.facts[p] = append([]dlog.Clause(nil), cs...)
	}
	for p, ts := range w.factTypes {
		c.factTypes[p] = append([]rel.Type(nil), ts...)
	}
	return c
}

// Clear empties the workspace.
func (w *Workspace) Clear() {
	w.rules = nil
	w.facts = make(map[string][]dlog.Clause)
	w.factTypes = make(map[string][]rel.Type)
}

func checkUserPred(p string) error {
	if strings.HasPrefix(p, "_") {
		return fmt.Errorf("core: predicate %s: names starting with '_' are reserved", p)
	}
	if strings.HasPrefix(p, magic.MagicPrefix) && strings.Contains(p, magic.AdornedSep) {
		return fmt.Errorf("core: predicate %s collides with magic-set naming", p)
	}
	return nil
}

// RuleSource abstracts where additional (stored) rules come from during
// compilation. The stored D/KB manager implements it; a nil source
// compiles from the workspace alone.
type RuleSource interface {
	// ExtractRelevant returns every stored rule whose head is one of
	// the given predicates or is reachable from them, using the
	// compiled reachablepreds relation.
	ExtractRelevant(preds []string) ([]dlog.Clause, error)
	// BaseTypes returns the column types of the given extensional
	// predicates, consulting the extensional data dictionary. Unknown
	// predicates are simply absent from the result.
	BaseTypes(preds []string) (map[string][]rel.Type, error)
}

// CompileStats breaks down compilation time the way the paper's Test 3
// reports it.
type CompileStats struct {
	// Setup: query parsing and query-rule construction.
	Setup time.Duration
	// Extract: time to pull the relevant rules out of the stored D/KB.
	Extract time.Duration
	// ReadDict: time to read the intensional/extensional dictionaries
	// (base-relation types).
	ReadDict time.Duration
	// Rewrite: magic-sets optimization time.
	Rewrite time.Duration
	// EvalOrder: PCG construction, clique finding, topological sort.
	EvalOrder time.Duration
	// TypeCheck: semantic checks and type inference.
	TypeCheck time.Duration
	// CodeGen: evaluation-program generation (the paper additionally
	// measures cc+link of the emitted C, which has no analog here; see
	// EXPERIMENTS.md).
	CodeGen time.Duration
	// Total wall-clock compilation time.
	Total time.Duration
	// RelevantRules and RelevantPreds are the R_r and P_r parameters.
	RelevantRules int
	RelevantPreds int
}

// Compiled is a ready-to-run query program.
type Compiled struct {
	Program *codegen.Program
	Stats   CompileStats
	// Vars are the query's output variable names, in answer-column
	// order.
	Vars []string
	// Optimized reports whether magic-sets rewriting was applied.
	Optimized bool
}

// CompileOptions control compilation.
type CompileOptions struct {
	// Optimize applies generalized magic sets when the query carries
	// constant bindings.
	Optimize bool
	// Trace, when non-nil, receives a "compile" span whose children are
	// the per-phase timings of CompileStats (setup, extract, read-dict,
	// magic rewrite, eval-order, typecheck, codegen).
	Trace *obs.Trace
}

// emitCompileSpans renders already-measured CompileStats as a span tree
// — the compiler keeps its own timers (the paper's Test 3 reports
// them), so the trace mirrors them rather than double-timing.
func emitCompileSpans(tr *obs.Trace, stats CompileStats, optimized bool) {
	if tr == nil {
		return
	}
	sp := tr.Start("compile")
	sp.SetDuration(stats.Total)
	sp.SetInt("relevant_rules", int64(stats.RelevantRules))
	sp.SetInt("relevant_preds", int64(stats.RelevantPreds))
	if optimized {
		sp.SetString("magic", "applied")
	}
	phases := []struct {
		name string
		d    time.Duration
	}{
		{"parse", stats.Setup},
		{"extract", stats.Extract},
		{"read-dict", stats.ReadDict},
		{"magic rewrite", stats.Rewrite},
		{"eval-order", stats.EvalOrder},
		{"semantic check", stats.TypeCheck},
		{"codegen", stats.CodeGen},
	}
	for _, ph := range phases {
		child := sp.Start(ph.name)
		child.SetDuration(ph.d)
	}
}

// Compiler compiles queries against a workspace, a database (for
// extensional schemas) and an optional stored rule source.
type Compiler struct {
	WS     *Workspace
	DB     *db.DB
	Stored RuleSource
}

// Compile turns a query into an evaluation program.
func (cp *Compiler) Compile(q dlog.Query, opts CompileOptions) (*Compiled, error) {
	stats := CompileStats{}
	total := time.Now()

	// --- Setup: build the query rule.
	t0 := time.Now()
	if len(q.Goals) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	queryRule := q.AsClause()
	vars := q.Vars()
	if len(vars) == 0 {
		return nil, fmt.Errorf("core: boolean (fully ground) queries are not supported; include at least one variable")
	}
	rules := append([]dlog.Clause(nil), cp.WS.Rules()...)
	rules = append(rules, queryRule)
	stats.Setup = time.Since(t0)

	// --- Extract relevant stored rules, iterating to a fixpoint
	// between workspace and stored D/KB as in the paper's §4.2 step 1.
	t0 = time.Now()
	if cp.Stored != nil {
		have := make(map[string]bool)
		for _, c := range rules {
			have[c.Head.Pred] = true
		}
		frontier := bodyPreds(rules)
		for len(frontier) > 0 {
			extracted, err := cp.Stored.ExtractRelevant(frontier)
			if err != nil {
				return nil, err
			}
			var added []dlog.Clause
			for _, c := range extracted {
				if !have[c.Head.Pred] {
					added = append(added, c)
				}
			}
			if len(added) == 0 {
				break
			}
			for _, c := range added {
				have[c.Head.Pred] = true
			}
			// Group added rules by head then append deterministically.
			rules = append(rules, added...)
			frontier = nil
			newPreds := bodyPreds(added)
			for _, p := range newPreds {
				if !have[p] {
					frontier = append(frontier, p)
				}
			}
		}
	}
	stats.Extract = time.Since(t0)

	// --- Scope the rules to those reachable from the query.
	g := pcg.Build(rules)
	reach := g.Reachable(dlog.QueryPred)
	var relevant []dlog.Clause
	for _, c := range rules {
		if reach[c.Head.Pred] {
			relevant = append(relevant, c)
		}
	}
	stats.RelevantRules = len(relevant) - 1 // excluding the query rule

	// --- Read dictionaries: types of all reachable base predicates.
	t0 = time.Now()
	baseTypes, err := cp.collectBaseTypes(g, reach)
	if err != nil {
		return nil, err
	}
	stats.ReadDict = time.Since(t0)

	// --- Normalize predicates defined by both rules and facts: move
	// the facts behind a bridge predicate (paper §1.1).
	relevant, g = normalizeMixed(relevant, g, baseTypes)

	// --- Optional magic-sets rewriting.
	queryPred := dlog.QueryPred
	var seeds []codegen.SeedFact
	seedOnly := make(map[string][]rel.Type)
	optimized := false
	t0 = time.Now()
	if opts.Optimize {
		res, err := magic.Rewrite(relevant, dlog.QueryPred, func(p string) bool { return g.IsDerived(p) })
		switch {
		case err == magic.ErrNoBindings:
			// Identity rewrite: fall through unoptimized.
		case err != nil:
			return nil, err
		default:
			relevant = res.Rules
			queryPred = res.QueryPred
			optimized = true
			for _, s := range res.Seeds {
				tu := make(rel.Tuple, len(s.Args))
				for i, t := range s.Args {
					tu[i] = t.Val
				}
				seeds = append(seeds, codegen.SeedFact{Pred: s.Pred, Tuple: tu})
			}
			g = pcg.Build(relevant)
			// A magic predicate may be defined only by its seed (no
			// magic rules, e.g. a non-recursive bound subgoal). Such
			// predicates act as base relations for type inference, and
			// the runtime materializes them from the seeds.
			for _, s := range seeds {
				if g.IsDerived(s.Pred) {
					continue
				}
				types := make([]rel.Type, len(s.Tuple))
				for i, v := range s.Tuple {
					types[i] = v.Kind
				}
				if have, ok := seedOnly[s.Pred]; ok {
					for i := range have {
						if i >= len(types) || have[i] != types[i] {
							return nil, fmt.Errorf("core: magic seeds for %s disagree on types", s.Pred)
						}
					}
				}
				seedOnly[s.Pred] = types
				baseTypes[s.Pred] = types
			}
		}
	}
	stats.Rewrite = time.Since(t0)

	// --- Cliques and evaluation order.
	t0 = time.Now()
	analysis, err := pcg.Analyze(g, queryPred)
	if err != nil {
		return nil, err
	}
	stats.EvalOrder = time.Since(t0)
	derivedCount := 0
	for p := range analysis.Reachable {
		if g.IsDerived(p) {
			derivedCount++
		}
	}
	stats.RelevantPreds = derivedCount

	// --- Semantic checks and type inference. Magic seeds hint the
	// types of seeded magic predicates whose rules alone are circular.
	t0 = time.Now()
	if err := typeinf.CheckDefined(g, analysis.Reachable, baseTypes); err != nil {
		return nil, err
	}
	hints := make(map[string][]rel.Type)
	for _, s := range seeds {
		types := make([]rel.Type, len(s.Tuple))
		for i, v := range s.Tuple {
			types[i] = v.Kind
		}
		hints[s.Pred] = types
	}
	derivedTypes, err := typeinf.InferHinted(analysis.Order, baseTypes, hints)
	if err != nil {
		return nil, err
	}
	stats.TypeCheck = time.Since(t0)

	// --- Code generation.
	t0 = time.Now()
	prog, err := codegen.Generate(analysis.Order, derivedTypes, analysis.BasePreds, queryPred)
	if err != nil {
		return nil, err
	}
	prog.Seeds = seeds
	// Seed-only magic predicates are materialized by the runtime, not
	// read from extensional tables: give them schemas and remove them
	// from the base list.
	if len(seedOnly) > 0 {
		var bases []string
		for _, p := range prog.BasePreds {
			if _, isSeed := seedOnly[p]; !isSeed {
				bases = append(bases, p)
			}
		}
		prog.BasePreds = bases
		for p, types := range seedOnly {
			cols := make([]rel.Column, len(types))
			for i, ty := range types {
				cols[i] = rel.Column{Name: fmt.Sprintf("c%d", i), Type: ty}
			}
			schema, err := rel.NewSchema(cols...)
			if err != nil {
				return nil, err
			}
			prog.Schemas[p] = schema
		}
	}
	stats.CodeGen = time.Since(t0)

	stats.Total = time.Since(total)
	emitCompileSpans(opts.Trace, stats, optimized)
	return &Compiled{Program: prog, Stats: stats, Vars: vars, Optimized: optimized}, nil
}

// collectBaseTypes resolves extensional predicate schemas: workspace
// fact types first, then the database catalog (and through it the
// stored D/KB's extensional dictionary).
func (cp *Compiler) collectBaseTypes(g *pcg.Graph, reach map[string]bool) (map[string][]rel.Type, error) {
	out := make(map[string][]rel.Type)
	var missing []string
	// Every reachable predicate is checked for extensional facts — even
	// derived ones, which normalizeMixed then splits into rule and fact
	// halves.
	for p := range reach {
		if t, ok := cp.WS.FactTypes()[p]; ok {
			out[p] = t
			continue
		}
		if cp.DB != nil {
			// Resolve through the DB (not the raw catalog): a snapshot-
			// bound view binds the lookup to its frozen table versions.
			if tb := cp.DB.Table(codegen.BaseTable(p)); tb != nil {
				types := make([]rel.Type, tb.Schema.Len())
				for i := 0; i < tb.Schema.Len(); i++ {
					types[i] = tb.Schema.Col(i).Type
				}
				out[p] = types
				continue
			}
		}
		missing = append(missing, p)
	}
	if cp.Stored != nil && len(missing) > 0 {
		extra, err := cp.Stored.BaseTypes(missing)
		if err != nil {
			return nil, err
		}
		for p, t := range extra {
			out[p] = t
		}
	}
	return out, nil
}

// normalizeMixed rewrites predicates that are both derived (rules) and
// extensional (facts): the facts stay in the predicate's extensional
// table, reached through a synthetic bridge rule
//
//	p(X0..Xn) :- _b_p(X0..Xn).
//
// so that every predicate is defined entirely by rules or entirely by
// facts, the form the rest of the pipeline assumes.
func normalizeMixed(relevant []dlog.Clause, g *pcg.Graph, baseTypes map[string][]rel.Type) ([]dlog.Clause, *pcg.Graph) {
	var mixed []string
	for p := range baseTypes {
		if g.IsDerived(p) {
			mixed = append(mixed, p)
		}
	}
	if len(mixed) == 0 {
		return relevant, g
	}
	sort.Strings(mixed)
	for _, p := range mixed {
		types := baseTypes[p]
		bridge := codegen.BridgePrefix + p
		args := make([]dlog.Term, len(types))
		for i := range args {
			args[i] = dlog.V(fmt.Sprintf("X%d", i))
		}
		relevant = append(relevant, dlog.Clause{
			Head: dlog.Atom{Pred: p, Args: args},
			Body: []dlog.Atom{{Pred: bridge, Args: args}},
		})
		baseTypes[bridge] = types
		delete(baseTypes, p)
	}
	return relevant, pcg.Build(relevant)
}

// bodyPreds returns the distinct predicates appearing in rule bodies,
// sorted.
func bodyPreds(rules []dlog.Clause) []string {
	set := make(map[string]bool)
	for _, c := range rules {
		for _, a := range c.Body {
			set[a.Pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
