package core

import (
	"strings"
	"testing"

	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/rel"
	"dkbms/internal/stored"
)

func ws(t *testing.T, srcs ...string) *Workspace {
	t.Helper()
	w := NewWorkspace()
	for _, s := range srcs {
		if err := w.AddClause(dlog.MustParseClause(s)); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWorkspaceSeparatesRulesAndFacts(t *testing.T) {
	w := ws(t,
		"parent(john, mary).",
		"ancestor(X, Y) :- parent(X, Y).",
	)
	if len(w.Rules()) != 1 {
		t.Fatalf("rules = %d", len(w.Rules()))
	}
	if len(w.Facts()["parent"]) != 1 {
		t.Fatalf("facts = %v", w.Facts())
	}
	ft := w.FactTypes()["parent"]
	if len(ft) != 2 || ft[0] != rel.TypeString {
		t.Fatalf("fact types = %v", ft)
	}
	if preds := w.RulePreds(); len(preds) != 1 || preds[0] != "ancestor" {
		t.Fatalf("rule preds = %v", preds)
	}
}

func TestWorkspaceRejections(t *testing.T) {
	w := NewWorkspace()
	if err := w.AddClause(dlog.MustParseClause("_x(X) :- e(X).")); err == nil {
		t.Fatal("reserved head accepted")
	}
	if err := w.AddClause(dlog.MustParseClause("p(X) :- _query(X).")); err == nil {
		t.Fatal("reserved body accepted")
	}
	if err := w.AddClause(dlog.MustParseClause("p(X, Y) :- e(X).")); err == nil {
		t.Fatal("non-range-restricted accepted")
	}
	w2 := ws(t, "f(a, 1).")
	if err := w2.AddClause(dlog.MustParseClause("f(b).")); err == nil {
		t.Fatal("fact arity conflict accepted")
	}
	if err := w2.AddClause(dlog.MustParseClause("f(b, c).")); err == nil {
		t.Fatal("fact type conflict accepted")
	}
}

func TestAddSource(t *testing.T) {
	w := NewWorkspace()
	if err := w.AddSource("p(a). q(X) :- p(X)."); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSource("?- q(X)."); err == nil {
		t.Fatal("query accepted by AddSource")
	}
	w.Clear()
	if len(w.Rules()) != 0 || len(w.Facts()) != 0 {
		t.Fatal("clear incomplete")
	}
}

// compileEnv prepares a compiler over an in-memory DB with stored facts.
func compileEnv(t *testing.T, w *Workspace) *Compiler {
	t.Helper()
	d := db.OpenMemory()
	t.Cleanup(func() { d.Close() })
	st, err := stored.Open(d, stored.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize workspace facts the way the facade does.
	for pred, facts := range w.Facts() {
		var tuples []rel.Tuple
		for _, f := range facts {
			tu := make(rel.Tuple, len(f.Head.Args))
			for i, a := range f.Head.Args {
				tu[i] = a.Val
			}
			tuples = append(tuples, tu)
		}
		if err := st.InsertFacts(pred, tuples); err != nil {
			t.Fatal(err)
		}
	}
	return &Compiler{WS: w, DB: d, Stored: st}
}

func query(t *testing.T, s string) dlog.Query {
	t.Helper()
	q, err := dlog.ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCompileAncestor(t *testing.T) {
	w := ws(t,
		"parent(john, mary).",
		"ancestor(X, Y) :- parent(X, Y).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
	)
	cp := compileEnv(t, w)
	compiled, err := cp.Compile(query(t, "?- ancestor(john, W)."), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Optimized {
		t.Fatal("optimize off but Optimized set")
	}
	if compiled.Stats.RelevantRules != 2 {
		t.Fatalf("R_r = %d", compiled.Stats.RelevantRules)
	}
	if compiled.Stats.RelevantPreds != 2 { // ancestor + _query
		t.Fatalf("P_r = %d", compiled.Stats.RelevantPreds)
	}
	if len(compiled.Vars) != 1 || compiled.Vars[0] != "W" {
		t.Fatalf("vars = %v", compiled.Vars)
	}
	prog := compiled.Program
	if prog.QueryPred != dlog.QueryPred {
		t.Fatalf("query pred %s", prog.QueryPred)
	}
	if len(prog.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(prog.Nodes))
	}
}

func TestCompileWithMagic(t *testing.T) {
	w := ws(t,
		"parent(john, mary).",
		"ancestor(X, Y) :- parent(X, Y).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
	)
	cp := compileEnv(t, w)
	compiled, err := cp.Compile(query(t, "?- ancestor(john, W)."), CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Optimized {
		t.Fatal("not optimized")
	}
	if len(compiled.Program.Seeds) != 1 {
		t.Fatalf("seeds = %v", compiled.Program.Seeds)
	}
	if !strings.Contains(compiled.Program.QueryPred, "_query") {
		t.Fatalf("query pred %s", compiled.Program.QueryPred)
	}
	// Unbound query falls back to identity.
	unopt, err := cp.Compile(query(t, "?- ancestor(A, B)."), CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if unopt.Optimized {
		t.Fatal("unbound query claimed optimization")
	}
}

func TestCompileStatsTimings(t *testing.T) {
	w := ws(t,
		"parent(john, mary).",
		"ancestor(X, Y) :- parent(X, Y).",
		"ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
	)
	cp := compileEnv(t, w)
	compiled, err := cp.Compile(query(t, "?- ancestor(john, W)."), CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	s := compiled.Stats
	if s.Total <= 0 {
		t.Fatalf("stats = %+v", s)
	}
	sum := s.Setup + s.Extract + s.ReadDict + s.Rewrite + s.EvalOrder + s.TypeCheck + s.CodeGen
	if sum > s.Total {
		t.Fatalf("component sum %v exceeds total %v", sum, s.Total)
	}
}

func TestCompilePullsStoredRules(t *testing.T) {
	// Rules live only in the stored D/KB; the workspace is empty.
	w := NewWorkspace()
	cp := compileEnv(t, w)
	st := cp.Stored.(*stored.Manager)
	if err := st.InsertFact("parent", rel.Tuple{rel.NewString("john"), rel.NewString("mary")}); err != nil {
		t.Fatal(err)
	}
	_, err := st.Update([]dlog.Clause{
		dlog.MustParseClause("ancestor(X, Y) :- parent(X, Y)."),
		dlog.MustParseClause("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y)."),
	})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := cp.Compile(query(t, "?- ancestor(john, W)."), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Stats.RelevantRules != 2 {
		t.Fatalf("R_r = %d", compiled.Stats.RelevantRules)
	}
}

func TestCompileMixedWorkspaceAndStored(t *testing.T) {
	// Workspace rule references a stored rule's predicate and vice
	// versa is exercised by the facade tests; here: workspace on top of
	// stored.
	w := ws(t, "named(X) :- ancestor(john, X).")
	cp := compileEnv(t, w)
	st := cp.Stored.(*stored.Manager)
	st.InsertFact("parent", rel.Tuple{rel.NewString("john"), rel.NewString("mary")})
	if _, err := st.Update([]dlog.Clause{
		dlog.MustParseClause("ancestor(X, Y) :- parent(X, Y)."),
		dlog.MustParseClause("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y)."),
	}); err != nil {
		t.Fatal(err)
	}
	compiled, err := cp.Compile(query(t, "?- named(W)."), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Stats.RelevantRules != 3 {
		t.Fatalf("R_r = %d", compiled.Stats.RelevantRules)
	}
}

func TestCompileErrors(t *testing.T) {
	w := ws(t, "p(X) :- ghost(X).")
	cp := compileEnv(t, w)
	if _, err := cp.Compile(query(t, "?- p(W)."), CompileOptions{}); err == nil {
		t.Fatal("undefined predicate accepted")
	}
	if _, err := cp.Compile(dlog.Query{}, CompileOptions{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := cp.Compile(query(t, "?- p(a)."), CompileOptions{}); err == nil {
		t.Fatal("ground query accepted")
	}
}

func TestNormalizeMixedPredicates(t *testing.T) {
	w := ws(t,
		"knows(ann, bob).",
		"friend(ann, carl).",
		"knows(X, Y) :- friend(X, Y).",
	)
	cp := compileEnv(t, w)
	compiled, err := cp.Compile(query(t, "?- knows(ann, W)."), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The program must read the bridge base predicate for knows' facts.
	foundBridge := false
	for _, p := range compiled.Program.BasePreds {
		if strings.HasPrefix(p, "_b_") {
			foundBridge = true
		}
	}
	if !foundBridge {
		t.Fatalf("no bridge predicate in %v", compiled.Program.BasePreds)
	}
}
