// Package wire defines the dkbd client/server protocol: length-prefixed
// frames carrying typed request and response messages.
//
// A frame is
//
//	uint32 big-endian payload length | uint8 message type | payload
//
// and payloads use the same compact primitives as the storage layer:
// uvarint-prefixed strings, varint integers, and tagged values. The
// protocol is deliberately small — seven request types mirroring the
// testbed's public operations (PING, LOAD, QUERY, PREPARE, EXECP,
// RETRACT, STATS) and their replies — so that a session is a strict
// request/response alternation over one TCP connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"dkbms"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

// MaxFrameSize bounds a frame payload; both sides refuse larger frames
// rather than buffering unbounded attacker-controlled lengths.
const MaxFrameSize = 16 << 20

// MsgType identifies a frame's message.
type MsgType uint8

// Request messages. dkblint's opcodecheck pass enforces that every
// constant here is handled by the server dispatch switch and follows
// the payload convention MsgFoo → type Foo + DecodeFoo; the directives
// declare the exceptions.
const (
	MsgPing MsgType = iota + 1 //dkblint:nopayload
	MsgLoad
	MsgQuery
	MsgPrepare
	MsgExecP
	MsgRetract
	MsgStats   //dkblint:nopayload
	MsgSlowlog //dkblint:nopayload
	MsgViews   //dkblint:nopayload
)

// Response messages.
const (
	MsgPong MsgType = iota + 0x10 //dkblint:nopayload
	MsgOK                         //dkblint:nopayload
	MsgError
	MsgResult
	MsgPrepared
	MsgRetracted
	MsgStatsReply   //dkblint:payload=ServerStats
	MsgSlowlogReply //dkblint:payload=Slowlog
	MsgViewsReply   //dkblint:payload=Views
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "PING"
	case MsgLoad:
		return "LOAD"
	case MsgQuery:
		return "QUERY"
	case MsgPrepare:
		return "PREPARE"
	case MsgExecP:
		return "EXECP"
	case MsgRetract:
		return "RETRACT"
	case MsgStats:
		return "STATS"
	case MsgSlowlog:
		return "SLOWLOG"
	case MsgViews:
		return "VIEWS"
	case MsgPong:
		return "PONG"
	case MsgOK:
		return "OK"
	case MsgError:
		return "ERROR"
	case MsgResult:
		return "RESULT"
	case MsgPrepared:
		return "PREPARED"
	case MsgRetracted:
		return "RETRACTED"
	case MsgStatsReply:
		return "STATSREPLY"
	case MsgSlowlogReply:
		return "SLOWLOGREPLY"
	case MsgViewsReply:
		return "VIEWSREPLY"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// WriteFrame writes one frame. It returns the number of bytes written
// (the server's traffic counters use it).
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	if len(payload) > MaxFrameSize {
		return 0, fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrameSize)
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = byte(t)
	return w.Write(append(hdr, payload...))
}

// ReadFrame reads one frame, returning its type, payload and total size
// on the wire. io.EOF is returned unwrapped on a clean close before the
// first header byte.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, 0, err // clean EOF between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, 0, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, 0, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return MsgType(hdr[4]), payload, 5 + int(n), nil
}

// --- Encoding primitives ---

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return "", nil, fmt.Errorf("wire: corrupt string field")
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("wire: corrupt uvarint field")
	}
	return n, buf[sz:], nil
}

func readVarint(buf []byte) (int64, []byte, error) {
	n, sz := binary.Varint(buf)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("wire: corrupt varint field")
	}
	return n, buf[sz:], nil
}

func appendValue(buf []byte, v rel.Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case rel.TypeInt:
		buf = binary.AppendVarint(buf, v.Int)
	case rel.TypeString:
		buf = appendString(buf, v.Str)
	}
	return buf
}

func readValue(buf []byte) (rel.Value, []byte, error) {
	if len(buf) < 1 {
		return rel.Value{}, nil, fmt.Errorf("wire: corrupt value field")
	}
	kind := rel.Type(buf[0])
	buf = buf[1:]
	switch kind {
	case rel.TypeInt:
		n, rest, err := readVarint(buf)
		if err != nil {
			return rel.Value{}, nil, err
		}
		return rel.NewInt(n), rest, nil
	case rel.TypeString:
		s, rest, err := readString(buf)
		if err != nil {
			return rel.Value{}, nil, err
		}
		return rel.NewString(s), rest, nil
	default:
		return rel.Value{}, nil, fmt.Errorf("wire: unknown value kind %d", kind)
	}
}

// --- Query options ---

// QueryOpts is the wire form of dkbms.QueryOptions. Keep the two
// structs in sync through FromOptions/ToOptions — they are the single
// conversion point between the wire and the root API.
type QueryOpts struct {
	Naive      bool
	NoOptimize bool
	Adaptive   bool
	Parallel   bool
	// Trace requests the query's span tree in the RESULT frame.
	Trace bool
	// QueryID tags the request with a client-minted query ID (see
	// obs.NewQueryID); the server stamps it into its log, trace and
	// slow-query ring and echoes it in the RESULT frame. 0 (no ID) lets
	// the server mint one — its echo tells the client what it was.
	QueryID uint64
}

const (
	optNaive = 1 << iota
	optNoOptimize
	optAdaptive
	optParallel
	optTrace
	// optQueryID marks a query-ID uvarint trailing the source string.
	// Decode-tolerant in both directions: ID-less frames are
	// byte-identical to the old encoding, and a server from before query
	// IDs ignores the unknown bit and the trailing bytes (it just mints
	// no echo).
	optQueryID
)

// FromOptions converts root-API query options to their wire form. A
// nil input is the zero QueryOpts (the defaults).
func FromOptions(o *dkbms.QueryOptions) QueryOpts {
	if o == nil {
		return QueryOpts{}
	}
	return QueryOpts{
		Naive:      o.Naive,
		NoOptimize: o.NoOptimize,
		Adaptive:   o.Adaptive,
		Parallel:   o.Parallel,
		Trace:      o.Trace,
		QueryID:    o.QueryID,
	}
}

// ToOptions converts wire options back to the root-API form.
func (o QueryOpts) ToOptions() *dkbms.QueryOptions {
	return &dkbms.QueryOptions{
		Naive:      o.Naive,
		NoOptimize: o.NoOptimize,
		Adaptive:   o.Adaptive,
		Parallel:   o.Parallel,
		Trace:      o.Trace,
		QueryID:    o.QueryID,
	}
}

func (o QueryOpts) encode() byte {
	var b byte
	if o.Naive {
		b |= optNaive
	}
	if o.NoOptimize {
		b |= optNoOptimize
	}
	if o.Adaptive {
		b |= optAdaptive
	}
	if o.Parallel {
		b |= optParallel
	}
	if o.Trace {
		b |= optTrace
	}
	if o.QueryID != 0 {
		b |= optQueryID
	}
	return b
}

func decodeOpts(b byte) QueryOpts {
	return QueryOpts{
		Naive:      b&optNaive != 0,
		NoOptimize: b&optNoOptimize != 0,
		Adaptive:   b&optAdaptive != 0,
		Parallel:   b&optParallel != 0,
		Trace:      b&optTrace != 0,
	}
}

// --- Requests ---

// Load is the LOAD request: enter a Horn-clause program.
type Load struct{ Src string }

// Encode renders the payload.
func (m Load) Encode() []byte { return appendString(nil, m.Src) }

// DecodeLoad parses a LOAD payload.
func DecodeLoad(p []byte) (Load, error) {
	src, _, err := readString(p)
	return Load{Src: src}, err
}

// Query is the QUERY request: compile and evaluate a query.
type Query struct {
	Src  string
	Opts QueryOpts
}

// Encode renders the payload: the option byte, the source, then (when
// the optQueryID bit is set) the query-ID uvarint.
func (m Query) Encode() []byte {
	buf := appendString([]byte{m.Opts.encode()}, m.Src)
	if m.Opts.QueryID != 0 {
		buf = binary.AppendUvarint(buf, m.Opts.QueryID)
	}
	return buf
}

// DecodeQuery parses a QUERY payload.
func DecodeQuery(p []byte) (Query, error) {
	if len(p) < 1 {
		return Query{}, fmt.Errorf("wire: empty QUERY payload")
	}
	src, rest, err := readString(p[1:])
	m := Query{Src: src, Opts: decodeOpts(p[0])}
	if err != nil {
		return m, err
	}
	if p[0]&optQueryID != 0 {
		if m.Opts.QueryID, _, err = readUvarint(rest); err != nil {
			return m, err
		}
	}
	return m, nil
}

// Prepare is the PREPARE request: compile a query for repeated EXECP.
type Prepare struct {
	Src  string
	Opts QueryOpts
}

// Encode renders the payload.
func (m Prepare) Encode() []byte {
	return appendString([]byte{m.Opts.encode()}, m.Src)
}

// DecodePrepare parses a PREPARE payload.
func DecodePrepare(p []byte) (Prepare, error) {
	q, err := DecodeQuery(p)
	return Prepare{Src: q.Src, Opts: q.Opts}, err
}

// ExecP is the EXECP request: run a prepared query by session-local id.
type ExecP struct {
	ID uint64
	// QueryID tags this execution (0 = none; the server mints one).
	// Trailing field: absent from old peers' payloads, decoded as zero.
	QueryID uint64
}

// Encode renders the payload.
func (m ExecP) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.ID)
	if m.QueryID != 0 {
		buf = binary.AppendUvarint(buf, m.QueryID)
	}
	return buf
}

// DecodeExecP parses an EXECP payload. The trailing query ID is
// optional: an old peer's payload ends at the statement id.
func DecodeExecP(p []byte) (ExecP, error) {
	id, rest, err := readUvarint(p)
	if err != nil {
		return ExecP{}, err
	}
	m := ExecP{ID: id}
	if len(rest) > 0 {
		if m.QueryID, _, err = readUvarint(rest); err != nil {
			return m, err
		}
	}
	return m, nil
}

// Retract is the RETRACT request: delete facts matching a pattern atom.
type Retract struct{ Pattern string }

// Encode renders the payload.
func (m Retract) Encode() []byte { return appendString(nil, m.Pattern) }

// DecodeRetract parses a RETRACT payload.
func DecodeRetract(p []byte) (Retract, error) {
	pat, _, err := readString(p)
	return Retract{Pattern: pat}, err
}

// --- Responses ---

// ErrCode classifies a server-side error so clients can branch with
// errors.Is instead of matching message text. Codes are part of the
// protocol: never renumber, only append.
type ErrCode uint8

// Stable error codes.
const (
	// CodeOther is any error without a finer classification.
	CodeOther ErrCode = iota
	// CodeParse maps to dkbms.ErrParse.
	CodeParse
	// CodeSemantic maps to dkbms.ErrSemantic.
	CodeSemantic
	// CodeUnknownPredicate maps to dkbms.ErrUnknownPredicate.
	CodeUnknownPredicate
	// CodeClosed maps to dkbms.ErrClosed.
	CodeClosed
)

// CodeFor classifies an error for the wire.
func CodeFor(err error) ErrCode {
	switch {
	case errors.Is(err, dkbms.ErrParse):
		return CodeParse
	case errors.Is(err, dkbms.ErrUnknownPredicate):
		return CodeUnknownPredicate
	case errors.Is(err, dkbms.ErrSemantic):
		return CodeSemantic
	case errors.Is(err, dkbms.ErrClosed):
		return CodeClosed
	default:
		return CodeOther
	}
}

// Error is the ERROR reply carrying the server-side error text plus its
// stable classification code.
type Error struct {
	Code ErrCode
	Msg  string
}

// Encode renders the payload.
func (m Error) Encode() []byte {
	return appendString([]byte{byte(m.Code)}, m.Msg)
}

// DecodeError parses an ERROR payload.
func DecodeError(p []byte) (Error, error) {
	if len(p) < 1 {
		return Error{}, fmt.Errorf("wire: empty ERROR payload")
	}
	msg, _, err := readString(p[1:])
	return Error{Code: ErrCode(p[0]), Msg: msg}, err
}

// Err converts a decoded ERROR reply back into a Go error wrapping the
// sentinel its code names, so errors.Is works identically on both sides
// of the wire. The message is the server-side text verbatim (it already
// names the sentinel), not re-prefixed.
func (m Error) Err() error {
	var sentinel error
	switch m.Code {
	case CodeParse:
		sentinel = dkbms.ErrParse
	case CodeSemantic:
		sentinel = dkbms.ErrSemantic
	case CodeUnknownPredicate:
		sentinel = dkbms.ErrUnknownPredicate
	case CodeClosed:
		sentinel = dkbms.ErrClosed
	default:
		return fmt.Errorf("dkbd: %s", m.Msg)
	}
	return &codedError{sentinel: sentinel, msg: "dkbd: " + m.Msg}
}

// codedError reports the server's message verbatim while unwrapping to
// the sentinel the wire code names.
type codedError struct {
	sentinel error
	msg      string
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.sentinel }

// Prepared is the PREPARED reply: the session-local id of a prepared
// query and the rule-base generation it was compiled at.
type Prepared struct {
	ID         uint64
	Generation uint64
}

// Encode renders the payload.
func (m Prepared) Encode() []byte {
	buf := binary.AppendUvarint(nil, m.ID)
	return binary.AppendUvarint(buf, m.Generation)
}

// DecodePrepared parses a PREPARED payload.
func DecodePrepared(p []byte) (Prepared, error) {
	id, rest, err := readUvarint(p)
	if err != nil {
		return Prepared{}, err
	}
	gen, _, err := readUvarint(rest)
	return Prepared{ID: id, Generation: gen}, err
}

// Retracted is the RETRACTED reply: how many facts were removed.
type Retracted struct{ N int64 }

// Encode renders the payload.
func (m Retracted) Encode() []byte { return binary.AppendVarint(nil, m.N) }

// DecodeRetracted parses a RETRACTED payload.
func DecodeRetracted(p []byte) (Retracted, error) {
	n, _, err := readVarint(p)
	return Retracted{N: n}, err
}

// Result is the RESULT reply: the answer relation plus evaluation
// provenance.
type Result struct {
	// Vars names the answer columns.
	Vars []string
	// Rows are the answer tuples.
	Rows []rel.Tuple
	// Optimized reports whether magic sets were applied.
	Optimized bool
	// Strategy is the LFP strategy used ("semi-naive" or "naive").
	Strategy string
	// Trace is the query's span tree, present only when the QUERY frame
	// carried the Trace option bit.
	Trace *obs.Span
	// QueryID echoes the request's query ID (client-sent or
	// server-minted), so the client can print the ID its query is
	// filed under in the server's log and slow-query ring.
	QueryID uint64
}

// Result payload flags.
const (
	resultOptimized = 1 << iota
	resultTrace
	resultQueryID
)

// Encode renders the payload.
func (m Result) Encode() []byte {
	var flags byte
	if m.Optimized {
		flags |= resultOptimized
	}
	if m.Trace != nil {
		flags |= resultTrace
	}
	if m.QueryID != 0 {
		flags |= resultQueryID
	}
	buf := []byte{flags}
	buf = appendString(buf, m.Strategy)
	buf = binary.AppendUvarint(buf, uint64(len(m.Vars)))
	for _, v := range m.Vars {
		buf = appendString(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Rows)))
	for _, tu := range m.Rows {
		buf = binary.AppendUvarint(buf, uint64(len(tu)))
		for _, v := range tu {
			buf = appendValue(buf, v)
		}
	}
	if m.QueryID != 0 {
		buf = binary.AppendUvarint(buf, m.QueryID)
	}
	if m.Trace != nil {
		buf = appendSpan(buf, m.Trace)
	}
	return buf
}

// Span-tree wire limits: a decoded trace may not nest deeper than
// maxSpanDepth or carry more than maxSpanNodes spans, bounding the
// recursion and allocation a hostile peer can force (the frame length
// itself is already bounded by MaxFrameSize).
const (
	maxSpanDepth = 64
	maxSpanNodes = 1 << 20
)

func appendSpan(buf []byte, s *obs.Span) []byte {
	buf = appendString(buf, s.Name)
	buf = binary.AppendVarint(buf, int64(s.Duration))
	buf = binary.AppendVarint(buf, int64(s.Offset))
	buf = binary.AppendUvarint(buf, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		buf = appendString(buf, a.Key)
		if a.IsStr {
			buf = append(buf, 1)
			buf = appendString(buf, a.Str)
		} else {
			buf = append(buf, 0)
			buf = binary.AppendVarint(buf, a.Int)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Children)))
	for _, c := range s.Children {
		buf = appendSpan(buf, c)
	}
	return buf
}

func readSpan(buf []byte, depth int, nodes *int) (*obs.Span, []byte, error) {
	if depth > maxSpanDepth {
		return nil, nil, fmt.Errorf("wire: trace nests deeper than %d", maxSpanDepth)
	}
	*nodes++
	if *nodes > maxSpanNodes {
		return nil, nil, fmt.Errorf("wire: trace exceeds %d spans", maxSpanNodes)
	}
	s := &obs.Span{}
	var err error
	if s.Name, buf, err = readString(buf); err != nil {
		return nil, nil, err
	}
	var dur int64
	if dur, buf, err = readVarint(buf); err != nil {
		return nil, nil, err
	}
	s.Duration = time.Duration(dur)
	var off int64
	if off, buf, err = readVarint(buf); err != nil {
		return nil, nil, err
	}
	s.Offset = time.Duration(off)
	nattrs, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if nattrs > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("wire: corrupt trace attr count")
	}
	s.Attrs = make([]obs.Attr, nattrs)
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Key, buf, err = readString(buf); err != nil {
			return nil, nil, err
		}
		if len(buf) < 1 {
			return nil, nil, fmt.Errorf("wire: corrupt trace attr")
		}
		tag := buf[0]
		buf = buf[1:]
		if tag == 1 {
			a.IsStr = true
			if a.Str, buf, err = readString(buf); err != nil {
				return nil, nil, err
			}
		} else {
			if a.Int, buf, err = readVarint(buf); err != nil {
				return nil, nil, err
			}
		}
	}
	nkids, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if nkids > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("wire: corrupt trace child count")
	}
	s.Children = make([]*obs.Span, 0, nkids)
	for i := uint64(0); i < nkids; i++ {
		var c *obs.Span
		if c, buf, err = readSpan(buf, depth+1, nodes); err != nil {
			return nil, nil, err
		}
		s.Children = append(s.Children, c)
	}
	return s, buf, nil
}

// DecodeResult parses a RESULT payload.
func DecodeResult(p []byte) (*Result, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("wire: empty RESULT payload")
	}
	m := &Result{Optimized: p[0]&resultOptimized != 0}
	var err error
	buf := p[1:]
	if m.Strategy, buf, err = readString(buf); err != nil {
		return nil, err
	}
	nvars, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nvars > uint64(len(buf)) {
		return nil, fmt.Errorf("wire: corrupt RESULT var count")
	}
	m.Vars = make([]string, nvars)
	for i := range m.Vars {
		if m.Vars[i], buf, err = readString(buf); err != nil {
			return nil, err
		}
	}
	nrows, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nrows > uint64(len(buf))+1 {
		return nil, fmt.Errorf("wire: corrupt RESULT row count")
	}
	m.Rows = make([]rel.Tuple, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		arity, rest, err := readUvarint(buf)
		if err != nil {
			return nil, err
		}
		buf = rest
		if arity > uint64(len(buf))+1 {
			return nil, fmt.Errorf("wire: corrupt RESULT arity")
		}
		tu := make(rel.Tuple, arity)
		for j := range tu {
			if tu[j], buf, err = readValue(buf); err != nil {
				return nil, err
			}
		}
		m.Rows = append(m.Rows, tu)
	}
	if p[0]&resultQueryID != 0 {
		if m.QueryID, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
	}
	if p[0]&resultTrace != 0 {
		var nodes int
		if m.Trace, _, err = readSpan(buf, 0, &nodes); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ServerStats is the STATSREPLY payload: a snapshot of server-side
// counters.
type ServerStats struct {
	// ActiveSessions is the number of currently connected sessions;
	// TotalSessions counts every session ever accepted.
	ActiveSessions int64
	TotalSessions  int64
	// InFlight is the number of requests being served right now.
	InFlight int64
	// Requests and Errors count completed requests and error replies.
	Requests int64
	Errors   int64
	// BytesIn and BytesOut count wire traffic, frames included.
	BytesIn  int64
	BytesOut int64
	// P50 and P99 are request-latency percentiles over a recent window.
	P50 time.Duration
	P99 time.Duration
	// PlanResultHits, PlanHits and PlanMisses are the shared plan
	// cache's counters: queries answered from the memoized result,
	// queries that reused a compiled program but re-evaluated, and full
	// compilations.
	PlanResultHits int64
	PlanHits       int64
	PlanMisses     int64
	// PoolHits, PoolMisses and PoolEvictions are the buffer pool's
	// counters aggregated across its shards.
	PoolHits      int64
	PoolMisses    int64
	PoolEvictions int64
	// Generation is the rule-base generation at snapshot time.
	Generation uint64
	// SnapshotGen is the published engine-snapshot generation (the
	// commit sequence number queries pin); SnapshotReaders counts
	// queries currently holding a pinned snapshot.
	SnapshotGen     uint64
	SnapshotReaders int64
	// ReclaimBacklog counts superseded table versions still kept
	// readable by pinned snapshots; WriterStall is the cumulative
	// writer time spent building copy-on-write table copies.
	ReclaimBacklog int64
	WriterStall    time.Duration
	// SchedWorkers is the shared evaluation pool's size; SchedQueued
	// counts admitted-but-unstarted tasks at snapshot time;
	// SchedSubmitted and SchedStolen count tasks submitted over the
	// pool's lifetime and tasks a waiting query ran inline instead of a
	// worker. Trailing fields: absent from old peers' payloads, decoded
	// as zero.
	SchedWorkers   int64
	SchedQueued    int64
	SchedSubmitted int64
	SchedStolen    int64
	// ViewsLive is the number of maintained materialized views in the
	// plan cache; ViewsMaintained and ViewsRederives count memos
	// refreshed incrementally and memos dropped for re-derivation;
	// ViewsDeltaTuples and ViewsMaintainTime aggregate the derived-delta
	// sizes and wall-clock cost of all maintenance runs. Trailing
	// fields: absent from pre-matview peers' payloads, decoded as zero.
	ViewsLive         int64
	ViewsMaintained   int64
	ViewsRederives    int64
	ViewsDeltaTuples  int64
	ViewsMaintainTime time.Duration
	// Queries counts QUERY+EXECP requests served (the telemetry ring's
	// query.count counter). Trailing field: absent from pre-telemetry
	// peers' payloads, decoded as zero.
	Queries int64
}

// Encode renders the payload. The snapshot fields trail the original
// layout so peers from before snapshot isolation still parse the
// prefix.
func (m ServerStats) Encode() []byte {
	var buf []byte
	for _, v := range []int64{
		m.ActiveSessions, m.TotalSessions, m.InFlight, m.Requests,
		m.Errors, m.BytesIn, m.BytesOut, int64(m.P50), int64(m.P99),
		m.PlanResultHits, m.PlanHits, m.PlanMisses,
		m.PoolHits, m.PoolMisses, m.PoolEvictions,
	} {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, m.Generation)
	buf = binary.AppendUvarint(buf, m.SnapshotGen)
	buf = binary.AppendVarint(buf, m.SnapshotReaders)
	buf = binary.AppendVarint(buf, m.ReclaimBacklog)
	buf = binary.AppendVarint(buf, int64(m.WriterStall))
	for _, v := range []int64{m.SchedWorkers, m.SchedQueued, m.SchedSubmitted, m.SchedStolen} {
		buf = binary.AppendVarint(buf, v)
	}
	for _, v := range []int64{m.ViewsLive, m.ViewsMaintained, m.ViewsRederives,
		m.ViewsDeltaTuples, int64(m.ViewsMaintainTime)} {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendVarint(buf, m.Queries)
	return buf
}

// DecodeServerStats parses a STATSREPLY payload. The trailing snapshot
// fields are optional: a payload ending at Generation (an older server)
// decodes with them zeroed.
func DecodeServerStats(p []byte) (ServerStats, error) {
	var m ServerStats
	var err error
	buf := p
	fields := []*int64{
		&m.ActiveSessions, &m.TotalSessions, &m.InFlight, &m.Requests,
		&m.Errors, &m.BytesIn, &m.BytesOut, (*int64)(&m.P50), (*int64)(&m.P99),
		&m.PlanResultHits, &m.PlanHits, &m.PlanMisses,
		&m.PoolHits, &m.PoolMisses, &m.PoolEvictions,
	}
	for _, f := range fields {
		if *f, buf, err = readVarint(buf); err != nil {
			return ServerStats{}, err
		}
	}
	if m.Generation, buf, err = readUvarint(buf); err != nil {
		return ServerStats{}, err
	}
	if len(buf) == 0 {
		return m, nil
	}
	if m.SnapshotGen, buf, err = readUvarint(buf); err != nil {
		return ServerStats{}, err
	}
	for _, f := range []*int64{&m.SnapshotReaders, &m.ReclaimBacklog, (*int64)(&m.WriterStall)} {
		if *f, buf, err = readVarint(buf); err != nil {
			return ServerStats{}, err
		}
	}
	if len(buf) == 0 {
		// Pre-scheduler peer: scheduler fields stay zero.
		return m, nil
	}
	for _, f := range []*int64{&m.SchedWorkers, &m.SchedQueued, &m.SchedSubmitted, &m.SchedStolen} {
		if *f, buf, err = readVarint(buf); err != nil {
			return ServerStats{}, err
		}
	}
	if len(buf) == 0 {
		// Pre-matview peer: view-maintenance fields stay zero.
		return m, nil
	}
	for _, f := range []*int64{&m.ViewsLive, &m.ViewsMaintained, &m.ViewsRederives,
		&m.ViewsDeltaTuples, (*int64)(&m.ViewsMaintainTime)} {
		if *f, buf, err = readVarint(buf); err != nil {
			return ServerStats{}, err
		}
	}
	if len(buf) == 0 {
		// Pre-telemetry peer: query counter stays zero.
		return m, nil
	}
	if m.Queries, buf, err = readVarint(buf); err != nil {
		return ServerStats{}, err
	}
	return m, nil
}
