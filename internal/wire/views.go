package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// ViewInfo is one maintained materialized view in a VIEWSREPLY payload.
type ViewInfo struct {
	// Query is the cached query's source text; Policy the maintenance
	// policy name it was stored under ("auto", "incremental").
	Query  string
	Policy string
	// Rows is the memoized answer's current size; Maintains counts
	// commits absorbed incrementally; LastDeltaTuples and LastMaintain
	// describe the most recent maintenance run.
	Rows            int64
	Maintains       int64
	LastDeltaTuples int64
	LastMaintain    time.Duration
}

// Views is the VIEWSREPLY payload: the server's live maintained views,
// most recently used first.
type Views struct {
	Views []ViewInfo
}

// maxViewEntries bounds the decoded view count (the plan cache is
// small; this only guards against corrupt frames).
const maxViewEntries = 1 << 16

// Encode renders the payload.
func (m Views) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(len(m.Views)))
	for _, v := range m.Views {
		buf = appendString(buf, v.Query)
		buf = appendString(buf, v.Policy)
		buf = binary.AppendVarint(buf, v.Rows)
		buf = binary.AppendVarint(buf, v.Maintains)
		buf = binary.AppendVarint(buf, v.LastDeltaTuples)
		buf = binary.AppendVarint(buf, int64(v.LastMaintain))
	}
	return buf
}

// DecodeViews parses a VIEWSREPLY payload.
func DecodeViews(p []byte) (Views, error) {
	var m Views
	n, buf, err := readUvarint(p)
	if err != nil {
		return Views{}, err
	}
	if n > maxViewEntries || n > uint64(len(buf))+1 {
		return Views{}, fmt.Errorf("wire: corrupt VIEWSREPLY view count %d", n)
	}
	m.Views = make([]ViewInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		var v ViewInfo
		if v.Query, buf, err = readString(buf); err != nil {
			return Views{}, err
		}
		if v.Policy, buf, err = readString(buf); err != nil {
			return Views{}, err
		}
		var ns int64
		for _, f := range []*int64{&v.Rows, &v.Maintains, &v.LastDeltaTuples, &ns} {
			if *f, buf, err = readVarint(buf); err != nil {
				return Views{}, err
			}
		}
		v.LastMaintain = time.Duration(ns)
		m.Views = append(m.Views, v)
	}
	return m, nil
}
