package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"dkbms/internal/rel"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	wn, err := WriteFrame(&buf, MsgQuery, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wn != 5+len(payload) {
		t.Fatalf("wrote %d bytes, want %d", wn, 5+len(payload))
	}
	ty, got, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != MsgQuery || string(got) != "hello" || rn != wn {
		t.Fatalf("read %v %q (%d bytes)", ty, got, rn)
	}
	// Clean EOF between frames is io.EOF, undecorated.
	if _, _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgLoad, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// An adversarial header with a huge length must be refused without
	// allocating the payload.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgLoad)})
	if _, _, _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgPing, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, _, _, err := ReadFrame(bytes.NewReader(trunc))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated read: %v", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	opts := QueryOpts{Naive: true, Parallel: true}

	q, err := DecodeQuery(Query{Src: "?- a(X).", Opts: opts}.Encode())
	if err != nil || q.Src != "?- a(X)." || q.Opts != opts {
		t.Fatalf("query round trip: %+v %v", q, err)
	}
	p, err := DecodePrepare(Prepare{Src: "?- b(Y).", Opts: opts}.Encode())
	if err != nil || p.Src != "?- b(Y)." || p.Opts != opts {
		t.Fatalf("prepare round trip: %+v %v", p, err)
	}
	l, err := DecodeLoad(Load{Src: "a(1)."}.Encode())
	if err != nil || l.Src != "a(1)." {
		t.Fatalf("load round trip: %+v %v", l, err)
	}
	e, err := DecodeExecP(ExecP{ID: 42}.Encode())
	if err != nil || e.ID != 42 {
		t.Fatalf("execp round trip: %+v %v", e, err)
	}
	r, err := DecodeRetract(Retract{Pattern: "a(1, X)"}.Encode())
	if err != nil || r.Pattern != "a(1, X)" {
		t.Fatalf("retract round trip: %+v %v", r, err)
	}
	rd, err := DecodeRetracted(Retracted{N: -3}.Encode())
	if err != nil || rd.N != -3 {
		t.Fatalf("retracted round trip: %+v %v", rd, err)
	}
	ee, err := DecodeError(Error{Msg: "boom"}.Encode())
	if err != nil || ee.Msg != "boom" {
		t.Fatalf("error round trip: %+v %v", ee, err)
	}
	pr, err := DecodePrepared(Prepared{ID: 7, Generation: 9}.Encode())
	if err != nil || pr.ID != 7 || pr.Generation != 9 {
		t.Fatalf("prepared round trip: %+v %v", pr, err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := Result{
		Vars: []string{"X", "Y"},
		Rows: []rel.Tuple{
			{rel.NewString("john"), rel.NewInt(1)},
			{rel.NewString("o'hara"), rel.NewInt(-5)},
		},
		Optimized: true,
		Strategy:  "semi-naive",
	}
	out, err := DecodeResult(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Optimized != in.Optimized || out.Strategy != in.Strategy {
		t.Fatalf("flags: %+v", out)
	}
	if len(out.Vars) != 2 || out.Vars[0] != "X" || out.Vars[1] != "Y" {
		t.Fatalf("vars: %v", out.Vars)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows: %v", out.Rows)
	}
	for i := range in.Rows {
		for j := range in.Rows[i] {
			if !rel.Equal(in.Rows[i][j], out.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, in.Rows[i][j], out.Rows[i][j])
			}
		}
	}
	// Empty result.
	empty, err := DecodeResult(Result{Strategy: "naive"}.Encode())
	if err != nil || len(empty.Rows) != 0 || len(empty.Vars) != 0 {
		t.Fatalf("empty result: %+v %v", empty, err)
	}
}

func TestServerStatsRoundTrip(t *testing.T) {
	in := ServerStats{
		ActiveSessions: 3, TotalSessions: 100, InFlight: 2,
		Requests: 12345, Errors: 6, BytesIn: 1 << 30, BytesOut: 1 << 31,
		P50: 150 * time.Microsecond, P99: 3 * time.Millisecond,
		PlanResultHits: 40, PlanHits: 9, PlanMisses: 3,
		PoolHits: 1 << 20, PoolMisses: 512, PoolEvictions: 77,
		Generation: 17,
	}
	out, err := DecodeServerStats(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// None of the decoders may panic or succeed on truncated payloads.
	corrupt := [][]byte{nil, {}, {0xFF}, {0x05, 'a'}}
	for _, p := range corrupt {
		if _, err := DecodeLoad(p); err == nil && len(p) != 0 {
			// empty string payload is legal for Load only when complete
			t.Errorf("DecodeLoad(%v) accepted", p)
		}
		if _, err := DecodeResult(p); err == nil {
			t.Errorf("DecodeResult(%v) accepted", p)
		}
		if _, err := DecodeServerStats(p); err == nil {
			t.Errorf("DecodeServerStats(%v) accepted", p)
		}
	}
}
