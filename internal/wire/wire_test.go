package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"dkbms"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	wn, err := WriteFrame(&buf, MsgQuery, payload)
	if err != nil {
		t.Fatal(err)
	}
	if wn != 5+len(payload) {
		t.Fatalf("wrote %d bytes, want %d", wn, 5+len(payload))
	}
	ty, got, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != MsgQuery || string(got) != "hello" || rn != wn {
		t.Fatalf("read %v %q (%d bytes)", ty, got, rn)
	}
	// Clean EOF between frames is io.EOF, undecorated.
	if _, _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgLoad, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// An adversarial header with a huge length must be refused without
	// allocating the payload.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgLoad)})
	if _, _, _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized read: %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgPing, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, _, _, err := ReadFrame(bytes.NewReader(trunc))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated read: %v", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	opts := QueryOpts{Naive: true, Parallel: true}

	q, err := DecodeQuery(Query{Src: "?- a(X).", Opts: opts}.Encode())
	if err != nil || q.Src != "?- a(X)." || q.Opts != opts {
		t.Fatalf("query round trip: %+v %v", q, err)
	}
	p, err := DecodePrepare(Prepare{Src: "?- b(Y).", Opts: opts}.Encode())
	if err != nil || p.Src != "?- b(Y)." || p.Opts != opts {
		t.Fatalf("prepare round trip: %+v %v", p, err)
	}
	l, err := DecodeLoad(Load{Src: "a(1)."}.Encode())
	if err != nil || l.Src != "a(1)." {
		t.Fatalf("load round trip: %+v %v", l, err)
	}
	e, err := DecodeExecP(ExecP{ID: 42}.Encode())
	if err != nil || e.ID != 42 {
		t.Fatalf("execp round trip: %+v %v", e, err)
	}
	r, err := DecodeRetract(Retract{Pattern: "a(1, X)"}.Encode())
	if err != nil || r.Pattern != "a(1, X)" {
		t.Fatalf("retract round trip: %+v %v", r, err)
	}
	rd, err := DecodeRetracted(Retracted{N: -3}.Encode())
	if err != nil || rd.N != -3 {
		t.Fatalf("retracted round trip: %+v %v", rd, err)
	}
	ee, err := DecodeError(Error{Msg: "boom"}.Encode())
	if err != nil || ee.Msg != "boom" {
		t.Fatalf("error round trip: %+v %v", ee, err)
	}
	pr, err := DecodePrepared(Prepared{ID: 7, Generation: 9}.Encode())
	if err != nil || pr.ID != 7 || pr.Generation != 9 {
		t.Fatalf("prepared round trip: %+v %v", pr, err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := Result{
		Vars: []string{"X", "Y"},
		Rows: []rel.Tuple{
			{rel.NewString("john"), rel.NewInt(1)},
			{rel.NewString("o'hara"), rel.NewInt(-5)},
		},
		Optimized: true,
		Strategy:  "semi-naive",
	}
	out, err := DecodeResult(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Optimized != in.Optimized || out.Strategy != in.Strategy {
		t.Fatalf("flags: %+v", out)
	}
	if len(out.Vars) != 2 || out.Vars[0] != "X" || out.Vars[1] != "Y" {
		t.Fatalf("vars: %v", out.Vars)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows: %v", out.Rows)
	}
	for i := range in.Rows {
		for j := range in.Rows[i] {
			if !rel.Equal(in.Rows[i][j], out.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, in.Rows[i][j], out.Rows[i][j])
			}
		}
	}
	// Empty result.
	empty, err := DecodeResult(Result{Strategy: "naive"}.Encode())
	if err != nil || len(empty.Rows) != 0 || len(empty.Vars) != 0 {
		t.Fatalf("empty result: %+v %v", empty, err)
	}
}

// TestQueryOptsRoundTrip drives every combination of the option bools
// through both conversion paths: root API ↔ wire struct, and wire
// struct ↔ option byte. If a field is added to one side but not the
// other, some combination here diverges.
func TestQueryOptsRoundTrip(t *testing.T) {
	for bits := 0; bits < 1<<5; bits++ {
		o := &dkbms.QueryOptions{
			Naive:      bits&1 != 0,
			NoOptimize: bits&2 != 0,
			Adaptive:   bits&4 != 0,
			Parallel:   bits&8 != 0,
			Trace:      bits&16 != 0,
		}
		w := FromOptions(o)
		back := w.ToOptions()
		if *back != *o {
			t.Errorf("bits %05b: FromOptions/ToOptions: got %+v, want %+v", bits, *back, *o)
		}
		if got := decodeOpts(w.encode()); got != w {
			t.Errorf("bits %05b: encode/decodeOpts: got %+v, want %+v", bits, got, w)
		}
		// The full QUERY frame must carry the bits too.
		q, err := DecodeQuery(Query{Src: "?- p(X).", Opts: w}.Encode())
		if err != nil || q.Opts != w {
			t.Errorf("bits %05b: query frame: %+v %v", bits, q.Opts, err)
		}
	}
	if FromOptions(nil) != (QueryOpts{}) {
		t.Errorf("FromOptions(nil) = %+v, want zero", FromOptions(nil))
	}
}

// TestErrorCodes checks that the code byte survives the wire and that
// Err() reconstructs an error satisfying errors.Is against the sentinel
// each code names.
func TestErrorCodes(t *testing.T) {
	cases := []struct {
		code     ErrCode
		in       error
		sentinel error
	}{
		{CodeParse, dkbms.ErrParse, dkbms.ErrParse},
		{CodeSemantic, dkbms.ErrSemantic, dkbms.ErrSemantic},
		{CodeUnknownPredicate, dkbms.ErrUnknownPredicate, dkbms.ErrUnknownPredicate},
		{CodeClosed, dkbms.ErrClosed, dkbms.ErrClosed},
		{CodeOther, errors.New("disk on fire"), nil},
	}
	for _, tc := range cases {
		if got := CodeFor(tc.in); got != tc.code {
			t.Errorf("CodeFor(%v) = %d, want %d", tc.in, got, tc.code)
		}
		msg := "dkbms: something: " + tc.in.Error()
		e, err := DecodeError(Error{Code: tc.code, Msg: msg}.Encode())
		if err != nil || e.Code != tc.code || e.Msg != msg {
			t.Fatalf("code %d round trip: %+v %v", tc.code, e, err)
		}
		out := e.Err()
		if tc.sentinel != nil && !errors.Is(out, tc.sentinel) {
			t.Errorf("code %d: %v does not wrap %v", tc.code, out, tc.sentinel)
		}
		if !strings.Contains(out.Error(), tc.in.Error()) {
			t.Errorf("code %d: message %q lost server text %q", tc.code, out.Error(), tc.in.Error())
		}
	}
	// Doubly-wrapped chains (the root API wraps sentinel over cause)
	// still classify by the sentinel.
	chain := fmt.Errorf("%w: %w", dkbms.ErrUnknownPredicate, errors.New("no rules for p"))
	if CodeFor(chain) != CodeUnknownPredicate {
		t.Errorf("wrapped unknown-predicate classified as %d", CodeFor(chain))
	}
}

// TestResultTraceRoundTrip encodes a RESULT carrying a span tree and
// checks the tree decodes node-for-node.
func TestResultTraceRoundTrip(t *testing.T) {
	tr := obs.NewTrace("query")
	c := tr.Root().Start("eval")
	it := c.Start("iteration 1")
	it.SetInt("delta(anc)", 42)
	it.SetString("strategy", "semi-naive")
	it.SetDuration(3 * time.Millisecond)
	it.End()
	c.End()
	tr.Finish()

	in := Result{Strategy: "semi-naive", Trace: tr.Root()}
	out, err := DecodeResult(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("trace dropped")
	}
	var compare func(a, b *obs.Span)
	compare = func(a, b *obs.Span) {
		if a.Name != b.Name || a.Duration != b.Duration || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
			t.Fatalf("span mismatch: %+v vs %+v", a, b)
		}
		for i := range a.Attrs {
			if a.Attrs[i] != b.Attrs[i] {
				t.Fatalf("attr %d of %q: %+v vs %+v", i, a.Name, a.Attrs[i], b.Attrs[i])
			}
		}
		for i := range a.Children {
			compare(a.Children[i], b.Children[i])
		}
	}
	compare(in.Trace, out.Trace)
	// Adopted traces format identically to the original.
	if got, want := obs.Adopt(out.Trace).Format(), tr.Format(); got != want {
		t.Errorf("formatted trace differs:\n%s\nvs\n%s", got, want)
	}
	// A result without the trace bit must decode with a nil trace.
	plain, err := DecodeResult(Result{Strategy: "naive"}.Encode())
	if err != nil || plain.Trace != nil {
		t.Fatalf("traceless result: %+v %v", plain, err)
	}
}

// TestTraceDepthGuard builds a chain nested past maxSpanDepth and
// checks the decoder refuses it instead of recursing unboundedly.
func TestTraceDepthGuard(t *testing.T) {
	root := &obs.Span{Name: "0"}
	cur := root
	for i := 0; i < maxSpanDepth+2; i++ {
		next := &obs.Span{Name: "n"}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	p := Result{Strategy: "naive", Trace: root}.Encode()
	if _, err := DecodeResult(p); err == nil || !strings.Contains(err.Error(), "nests deeper") {
		t.Fatalf("deep trace accepted: %v", err)
	}
	// Truncated span payloads must error, not panic.
	ok := Result{Strategy: "naive", Trace: &obs.Span{Name: "x", Attrs: []obs.Attr{{Key: "k", Int: 7}}}}.Encode()
	for i := len(ok) - 1; i > len(ok)-6; i-- {
		if _, err := DecodeResult(ok[:i]); err == nil {
			t.Errorf("truncated trace at %d accepted", i)
		}
	}
}

func TestServerStatsRoundTrip(t *testing.T) {
	in := ServerStats{
		ActiveSessions: 3, TotalSessions: 100, InFlight: 2,
		Requests: 12345, Errors: 6, BytesIn: 1 << 30, BytesOut: 1 << 31,
		P50: 150 * time.Microsecond, P99: 3 * time.Millisecond,
		PlanResultHits: 40, PlanHits: 9, PlanMisses: 3,
		PoolHits: 1 << 20, PoolMisses: 512, PoolEvictions: 77,
		Generation:   17,
		SchedWorkers: 4, SchedQueued: 2, SchedSubmitted: 999, SchedStolen: 31,
		ViewsLive: 2, ViewsMaintained: 55, ViewsRederives: 4,
		ViewsDeltaTuples: 310, ViewsMaintainTime: 9 * time.Millisecond,
		Queries: 4242,
	}
	out, err := DecodeServerStats(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

// TestServerStatsOldPeer: payloads from servers built before the
// scheduler fields, and before the view-maintenance fields, must still
// decode with the absent trailing fields zero.
func TestServerStatsOldPeer(t *testing.T) {
	in := ServerStats{
		Requests: 7, Generation: 3,
		SnapshotReaders: 1, ReclaimBacklog: 2, WriterStall: time.Millisecond,
	}
	// With the four sched fields, five view fields and the query counter
	// zero, Encode appends exactly ten single-byte varints; dropping
	// suffixes reproduces the older peers' frames.
	full := in.Encode()
	for _, tc := range []struct {
		name string
		cut  int
	}{
		{"pre-scheduler", 10},
		{"pre-matview", 6},
		{"pre-telemetry", 1},
	} {
		out, err := DecodeServerStats(full[:len(full)-tc.cut])
		if err != nil {
			t.Fatalf("%s payload rejected: %v", tc.name, err)
		}
		if out != in {
			t.Fatalf("%s: got %+v, want %+v", tc.name, out, in)
		}
	}
}

func TestViewsRoundTrip(t *testing.T) {
	in := Views{Views: []ViewInfo{
		{Query: "?- ancestor(c0, X).", Policy: "auto", Rows: 16,
			Maintains: 12, LastDeltaTuples: 3, LastMaintain: 480 * time.Microsecond},
		{Query: "?- same_gen(a, X).", Policy: "incremental", Rows: 1022},
	}}
	out, err := DecodeViews(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Views) != 2 || out.Views[0] != in.Views[0] || out.Views[1] != in.Views[1] {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	// Empty reply round-trips too.
	empty, err := DecodeViews(Views{}.Encode())
	if err != nil || len(empty.Views) != 0 {
		t.Fatalf("empty reply: %+v, %v", empty, err)
	}
	// Truncated payloads are rejected, not panicked on.
	enc := in.Encode()
	for _, p := range [][]byte{nil, {0xFF}, enc[:len(enc)-3], enc[:5]} {
		if _, err := DecodeViews(p); err == nil {
			t.Errorf("DecodeViews(%v) accepted", p)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// None of the decoders may panic or succeed on truncated payloads.
	corrupt := [][]byte{nil, {}, {0xFF}, {0x05, 'a'}}
	for _, p := range corrupt {
		if _, err := DecodeLoad(p); err == nil && len(p) != 0 {
			// empty string payload is legal for Load only when complete
			t.Errorf("DecodeLoad(%v) accepted", p)
		}
		if _, err := DecodeResult(p); err == nil {
			t.Errorf("DecodeResult(%v) accepted", p)
		}
		if _, err := DecodeServerStats(p); err == nil {
			t.Errorf("DecodeServerStats(%v) accepted", p)
		}
	}
}

func TestSlowlogRoundTrip(t *testing.T) {
	tr := obs.NewTrace("query")
	sp := tr.Start("lfp")
	sp.SetInt("iterations", 9)
	sp.End()
	tr.Finish()
	in := Slowlog{
		ThresholdNs: int64(5 * time.Millisecond),
		Capacity:    128,
		Recorded:    2,
		Entries: []obs.SlowQuery{
			{
				Query:      "?- ancestor(X, W).",
				Start:      time.Unix(0, 1700000000123456789),
				Latency:    42 * time.Millisecond,
				Cache:      "plan",
				Iterations: 9,
				Rows:       8194,
				Session:    7,
				Trace:      tr.Root(),
			},
			{Query: "?- broken(", Latency: time.Millisecond, Err: "parse error"},
		},
	}
	out, err := DecodeSlowlog(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.ThresholdNs != in.ThresholdNs || out.Capacity != 128 || out.Recorded != 2 {
		t.Fatalf("header fields wrong: %+v", out)
	}
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(out.Entries))
	}
	e := out.Entries[0]
	if e.Query != in.Entries[0].Query || e.Latency != in.Entries[0].Latency ||
		e.Cache != "plan" || e.Iterations != 9 || e.Rows != 8194 || e.Session != 7 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if !e.Start.Equal(in.Entries[0].Start) {
		t.Fatalf("start = %v, want %v", e.Start, in.Entries[0].Start)
	}
	if e.Trace == nil || e.Trace.Find("lfp") == nil {
		t.Fatal("retained trace lost on the wire")
	}
	if v, _ := e.Trace.Find("lfp").Int("iterations"); v != 9 {
		t.Fatalf("trace attr lost: %d", v)
	}
	if out.Entries[1].Trace != nil || out.Entries[1].Err != "parse error" {
		t.Fatalf("entry 1 = %+v", out.Entries[1])
	}
}

func TestDecodeSlowlogCorrupt(t *testing.T) {
	for _, p := range [][]byte{nil, {}, {0xFF}, {0x00, 0x00, 0x00, 0xFF}} {
		if _, err := DecodeSlowlog(p); err == nil {
			t.Errorf("DecodeSlowlog(%v) accepted", p)
		}
	}
	// An entry count larger than the payload must be rejected, not
	// allocated.
	var buf []byte
	buf = append(buf, 0, 0, 0) // threshold, capacity, recorded
	buf = append(buf, 0xFF, 0xFF, 0x03)
	if _, err := DecodeSlowlog(buf); err == nil {
		t.Error("oversized entry count accepted")
	}
}

// TestQueryIDRoundTrip drives the wire-propagated query ID through the
// QUERY, EXECP and RESULT frames, and checks the ID-less encodings stay
// byte-identical to the pre-telemetry layout (old peers decode them).
func TestQueryIDRoundTrip(t *testing.T) {
	const qid = 0xdeadbeefcafe

	// QUERY: the ID rides behind the option bit.
	q, err := DecodeQuery(Query{Src: "?- a(X).", Opts: QueryOpts{Naive: true, QueryID: qid}}.Encode())
	if err != nil || q.Opts.QueryID != qid || !q.Opts.Naive || q.Src != "?- a(X)." {
		t.Fatalf("query with id: %+v %v", q, err)
	}
	// Without an ID the frame carries no extra bytes or bits.
	plain := Query{Src: "?- a(X)."}.Encode()
	if plain[0] != 0 || len(plain) != 1+1+len("?- a(X).") {
		t.Fatalf("ID-less QUERY grew: flags=%x len=%d", plain[0], len(plain))
	}

	// EXECP: the ID is a decode-tolerant trailing field.
	e, err := DecodeExecP(ExecP{ID: 9, QueryID: qid}.Encode())
	if err != nil || e.ID != 9 || e.QueryID != qid {
		t.Fatalf("execp with id: %+v %v", e, err)
	}
	// An old peer's payload ends at the statement id.
	old, err := DecodeExecP(ExecP{ID: 9}.Encode())
	if err != nil || old.ID != 9 || old.QueryID != 0 {
		t.Fatalf("old-peer execp: %+v %v", old, err)
	}
	if len(ExecP{ID: 9}.Encode()) != 1 {
		t.Fatalf("ID-less EXECP grew: %d bytes", len(ExecP{ID: 9}.Encode()))
	}

	// RESULT: the server echoes the ID behind a flags bit.
	r, err := DecodeResult(Result{Strategy: "semi-naive", QueryID: qid}.Encode())
	if err != nil || r.QueryID != qid || r.Strategy != "semi-naive" {
		t.Fatalf("result echo: %+v %v", r, err)
	}
	if p := (Result{Strategy: "naive"}).Encode(); p[0] != 0 {
		t.Fatalf("ID-less RESULT sets flags %x", p[0])
	}

	// RESULT carrying both an ID and a trace keeps the field order.
	tr := obs.NewTrace("query")
	tr.Finish()
	rt, err := DecodeResult(Result{Strategy: "naive", QueryID: qid, Trace: tr.Root()}.Encode())
	if err != nil || rt.QueryID != qid || rt.Trace == nil || rt.Trace.Name != "query" {
		t.Fatalf("result id+trace: %+v %v", rt, err)
	}
}

// TestSpanOffsetRoundTrip checks the span start offsets survive the
// wire (the Perfetto exporter places spans on the timeline with them).
func TestSpanOffsetRoundTrip(t *testing.T) {
	root := &obs.Span{Name: "query", Duration: 10 * time.Millisecond}
	root.Children = []*obs.Span{
		{Name: "compile", Duration: 2 * time.Millisecond},
		{Name: "eval", Offset: 2 * time.Millisecond, Duration: 8 * time.Millisecond},
	}
	out, err := DecodeResult(Result{Strategy: "naive", Trace: root}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Trace.Children[1].Offset; got != 2*time.Millisecond {
		t.Fatalf("eval offset = %v", got)
	}
	if got := out.Trace.Children[0].Offset; got != 0 {
		t.Fatalf("compile offset = %v", got)
	}
}

// TestSlowlogQueryID checks the per-entry query ID survives the wire.
func TestSlowlogQueryID(t *testing.T) {
	in := Slowlog{Capacity: 8, Recorded: 1, Entries: []obs.SlowQuery{
		{Query: "?- a(X).", Latency: time.Millisecond, QueryID: 0xabc},
	}}
	out, err := DecodeSlowlog(in.Encode())
	if err != nil || len(out.Entries) != 1 || out.Entries[0].QueryID != 0xabc {
		t.Fatalf("slowlog query id: %+v %v", out, err)
	}
}
