package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"dkbms/internal/obs"
)

// Slowlog is the SLOWLOGREPLY payload: the server's retained slow-query
// records, slowest first, plus the log's retention settings.
type Slowlog struct {
	// ThresholdNs is the server's retention threshold in nanoseconds
	// (0 = every query is retained).
	ThresholdNs int64
	// Capacity is the ring size; Recorded counts entries ever retained.
	Capacity int64
	Recorded int64
	// Entries are the retained records, slowest first.
	Entries []obs.SlowQuery
}

// maxSlowlogEntries bounds the decoded entry count (the ring itself is
// small; this only guards against corrupt frames).
const maxSlowlogEntries = 1 << 16

// Encode renders the payload.
func (m Slowlog) Encode() []byte {
	buf := binary.AppendVarint(nil, m.ThresholdNs)
	buf = binary.AppendVarint(buf, m.Capacity)
	buf = binary.AppendVarint(buf, m.Recorded)
	buf = binary.AppendUvarint(buf, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		buf = appendSlowQuery(buf, e)
	}
	return buf
}

func appendSlowQuery(buf []byte, e obs.SlowQuery) []byte {
	buf = appendString(buf, e.Query)
	buf = binary.AppendVarint(buf, e.Start.UnixNano())
	buf = binary.AppendVarint(buf, int64(e.Latency))
	buf = appendString(buf, e.Cache)
	buf = binary.AppendVarint(buf, e.Iterations)
	buf = binary.AppendVarint(buf, e.Rows)
	buf = binary.AppendVarint(buf, e.Session)
	buf = binary.AppendUvarint(buf, e.QueryID)
	buf = appendString(buf, e.Err)
	if e.Trace != nil {
		buf = append(buf, 1)
		buf = appendSpan(buf, e.Trace)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeSlowlog parses a SLOWLOGREPLY payload.
func DecodeSlowlog(p []byte) (Slowlog, error) {
	var m Slowlog
	var err error
	buf := p
	if m.ThresholdNs, buf, err = readVarint(buf); err != nil {
		return Slowlog{}, err
	}
	if m.Capacity, buf, err = readVarint(buf); err != nil {
		return Slowlog{}, err
	}
	if m.Recorded, buf, err = readVarint(buf); err != nil {
		return Slowlog{}, err
	}
	n, buf, err := readUvarint(buf)
	if err != nil {
		return Slowlog{}, err
	}
	if n > maxSlowlogEntries || n > uint64(len(buf))+1 {
		return Slowlog{}, fmt.Errorf("wire: corrupt SLOWLOGREPLY entry count %d", n)
	}
	m.Entries = make([]obs.SlowQuery, 0, n)
	for i := uint64(0); i < n; i++ {
		var e obs.SlowQuery
		if e, buf, err = readSlowQuery(buf); err != nil {
			return Slowlog{}, err
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}

func readSlowQuery(buf []byte) (obs.SlowQuery, []byte, error) {
	var e obs.SlowQuery
	var err error
	if e.Query, buf, err = readString(buf); err != nil {
		return e, nil, err
	}
	var ns int64
	if ns, buf, err = readVarint(buf); err != nil {
		return e, nil, err
	}
	e.Start = time.Unix(0, ns)
	if ns, buf, err = readVarint(buf); err != nil {
		return e, nil, err
	}
	e.Latency = time.Duration(ns)
	if e.Cache, buf, err = readString(buf); err != nil {
		return e, nil, err
	}
	if e.Iterations, buf, err = readVarint(buf); err != nil {
		return e, nil, err
	}
	if e.Rows, buf, err = readVarint(buf); err != nil {
		return e, nil, err
	}
	if e.Session, buf, err = readVarint(buf); err != nil {
		return e, nil, err
	}
	if e.QueryID, buf, err = readUvarint(buf); err != nil {
		return e, nil, err
	}
	if e.Err, buf, err = readString(buf); err != nil {
		return e, nil, err
	}
	if len(buf) < 1 {
		return e, nil, fmt.Errorf("wire: truncated slow-query record")
	}
	hasTrace := buf[0] == 1
	buf = buf[1:]
	if hasTrace {
		var nodes int
		if e.Trace, buf, err = readSpan(buf, 0, &nodes); err != nil {
			return e, nil, err
		}
	}
	return e, buf, nil
}
