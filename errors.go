package dkbms

import (
	"errors"
	"fmt"

	"dkbms/internal/typeinf"
)

// Typed errors. Every failure surfaced by Load, Query, Retract and
// friends wraps one of these sentinels, so callers branch with
// errors.Is instead of matching message text — and the dkbd wire
// protocol carries the classification as a stable code byte that the
// client maps back to the same sentinels (see internal/wire).
var (
	// ErrParse marks Horn-clause syntax errors (Load sources, query
	// text, retract patterns).
	ErrParse = errors.New("dkbms: parse error")
	// ErrSemantic marks clauses or queries that parse but are rejected
	// by the semantic checker: range-restriction violations, reserved
	// predicate names, arity or type conflicts.
	ErrSemantic = errors.New("dkbms: semantic error")
	// ErrUnknownPredicate marks queries or rules over a predicate with
	// neither defining rules nor a fact relation.
	ErrUnknownPredicate = errors.New("dkbms: unknown predicate")
)

// parseErr wraps an error from the Horn-clause parser.
func parseErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrParse, err)
}

// semanticErr classifies a compilation (or clause-admission) failure:
// definedness violations become ErrUnknownPredicate, everything else
// ErrSemantic.
func semanticErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, typeinf.ErrUndefined) {
		return fmt.Errorf("%w: %w", ErrUnknownPredicate, err)
	}
	return fmt.Errorf("%w: %w", ErrSemantic, err)
}
