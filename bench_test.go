// Benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation (§5.3), each exercising the measured operation at
// a representative parameter point. The full parameter sweeps — the
// complete regenerated tables/figures — are produced by cmd/dkbbench
// (internal/bench); these benches give stable per-operation numbers
// with -benchmem and feed bench_output.txt.
package dkbms_test

import (
	"fmt"
	"testing"

	"dkbms"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/rel"
	"dkbms/internal/rtlib"
	"dkbms/internal/stored"
	"dkbms/internal/workload"
)

// chainTestbed loads nChains rule chains of the given length into the
// stored D/KB of a fresh in-memory testbed.
func chainTestbed(b *testing.B, nChains, length int) (*dkbms.Testbed, []string) {
	b.Helper()
	tb := dkbms.NewMemory()
	b.Cleanup(func() { tb.Close() })
	rules, heads, bases := workload.RuleChains(nChains, length)
	for _, base := range bases {
		if err := tb.AssertTuples(base, workload.ChainFacts()); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tb.Stored().Update(rules); err != nil {
		b.Fatal(err)
	}
	return tb, heads
}

func treeTestbed(b *testing.B, depth int) *dkbms.Testbed {
	b.Helper()
	tb := dkbms.NewMemory()
	b.Cleanup(func() { tb.Close() })
	if err := tb.AssertTuples("parent", workload.FullBinaryTree(depth)); err != nil {
		b.Fatal(err)
	}
	if err := tb.CreateFactIndex("parent", 0); err != nil {
		b.Fatal(err)
	}
	tb.MustLoad(`
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`)
	return tb
}

func compileQuery(b *testing.B, tb *dkbms.Testbed, q string, opts *dkbms.QueryOptions) *dkbms.QueryResult {
	b.Helper()
	query, err := dlog.ParseQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := tb.Compile(query, opts)
	if err != nil {
		b.Fatal(err)
	}
	return &dkbms.QueryResult{Compile: compiled.Stats}
}

func runQuery(b *testing.B, tb *dkbms.Testbed, q string, opts *dkbms.QueryOptions) *dkbms.QueryResult {
	b.Helper()
	res, err := tb.Query(q, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig7ExtractVsStoredRules — Test 1 / Fig 7: relevant-rule
// extraction at R_s=320 stored rules, R_r=7 relevant. The flatness
// claim itself (extraction time independent of R_s) is shown by the
// two sub-benchmarks having near-identical ns/op despite 8x R_s.
func BenchmarkFig7ExtractVsStoredRules(b *testing.B) {
	for _, rs := range []int{160, 1280} {
		b.Run(fmt.Sprintf("Rs=%d", rs), func(b *testing.B) {
			tb, heads := chainTestbed(b, rs/7+1, 7)
			q := fmt.Sprintf("?- %s(x, W).", heads[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := compileQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
				if res.Compile.RelevantRules != 7 {
					b.Fatalf("R_r = %d", res.Compile.RelevantRules)
				}
			}
		})
	}
}

// BenchmarkFig8ExtractVsRelevantRules — Test 1 / Fig 8: extraction cost
// grows with R_r at fixed R_s.
func BenchmarkFig8ExtractVsRelevantRules(b *testing.B) {
	for _, rr := range []int{1, 20} {
		b.Run(fmt.Sprintf("Rr=%d", rr), func(b *testing.B) {
			tb, heads := chainTestbed(b, 320/rr, rr)
			q := fmt.Sprintf("?- %s(x, W).", heads[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				compileQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
			}
		})
	}
}

// wideChainTestbed supports the dictionary-read benchmarks.
func wideChainTestbed(b *testing.B, nChains, length int) *dkbms.Testbed {
	b.Helper()
	tb := dkbms.NewMemory()
	b.Cleanup(func() { tb.Close() })
	rules, _, bases := workload.WideRuleChains(nChains, length)
	for _, base := range bases {
		if err := tb.AssertTuples(base, workload.ChainFacts()); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tb.Stored().Update(rules); err != nil {
		b.Fatal(err)
	}
	return tb
}

// BenchmarkFig9ReadDictVsStoredPreds — Test 2 / Fig 9: dictionary reads
// at P_r=4 with small vs large dictionaries (flat in P_s).
func BenchmarkFig9ReadDictVsStoredPreds(b *testing.B) {
	for _, nChains := range []int{8, 64} {
		b.Run(fmt.Sprintf("Ps=%d", nChains*10), func(b *testing.B) {
			tb := wideChainTestbed(b, nChains, 10)
			q := fmt.Sprintf("?- %s(x, W).", workload.ChainPred(0, 6)) // P_r = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				compileQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
			}
		})
	}
}

// BenchmarkFig10ReadDictVsRelevantPreds — Test 2 / Fig 10: dictionary
// reads growing with P_r at fixed P_s.
func BenchmarkFig10ReadDictVsRelevantPreds(b *testing.B) {
	tb := wideChainTestbed(b, 16, 20)
	for _, pr := range []int{1, 10, 20} {
		b.Run(fmt.Sprintf("Pr=%d", pr), func(b *testing.B) {
			q := fmt.Sprintf("?- %s(x, W).", workload.ChainPred(0, 20-pr))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				compileQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
			}
		})
	}
}

// BenchmarkTable4CompileBreakdown — Test 3 / Table 4: full compilation
// at R_r=20; component shares are reported as metrics.
func BenchmarkTable4CompileBreakdown(b *testing.B) {
	tb, heads := chainTestbed(b, 20, 20)
	q := fmt.Sprintf("?- %s(x, W).", heads[0])
	var last dkbms.QueryResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = *compileQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
	}
	b.StopTimer()
	s := last.Compile
	if s.Total > 0 {
		b.ReportMetric(100*float64(s.Extract)/float64(s.Total), "%extract")
		b.ReportMetric(100*float64(s.ReadDict)/float64(s.Total), "%readdict")
		b.ReportMetric(100*float64(s.EvalOrder)/float64(s.Total), "%evalorder")
	}
}

// BenchmarkFig11RelevantFraction — Test 4 / Fig 11: unoptimized
// execution is insensitive to where the query lands in the tree; the
// two sub-benchmarks (whole tree vs deep subtree) should be close.
func BenchmarkFig11RelevantFraction(b *testing.B) {
	tb := treeTestbed(b, 9)
	for _, level := range []int{1, 5} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(1<<(level-1)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
			}
		})
	}
}

// BenchmarkFig12NaiveVsSeminaive — Test 5 / Fig 12: the naive/semi-
// naive gap on tree data.
func BenchmarkFig12NaiveVsSeminaive(b *testing.B) {
	tb := treeTestbed(b, 9)
	q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(1))
	for _, naive := range []bool{false, true} {
		name := "seminaive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, tb, q, &dkbms.QueryOptions{Naive: naive, NoOptimize: true})
			}
		})
	}
}

// BenchmarkTable5LFPBreakdown — Test 6 / Table 5: evaluation-phase
// shares reported as metrics.
func BenchmarkTable5LFPBreakdown(b *testing.B) {
	tb := treeTestbed(b, 9)
	q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(1))
	var last *dkbms.QueryResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = runQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: true})
	}
	b.StopTimer()
	s := last.Eval
	if s.Elapsed > 0 {
		b.ReportMetric(100*float64(s.Eval)/float64(s.Elapsed), "%ruleeval")
		b.ReportMetric(100*float64(s.TermCheck)/float64(s.Elapsed), "%termcheck")
		b.ReportMetric(100*float64(s.TempTable)/float64(s.Elapsed), "%temptables")
	}
}

// BenchmarkFig13MagicCrossover — Test 7 / Fig 13: magic on/off at low
// and at full selectivity; magic should win the former and lose the
// latter.
func BenchmarkFig13MagicCrossover(b *testing.B) {
	tb := treeTestbed(b, 10)
	cases := []struct {
		name  string
		node  string
		magic bool
	}{
		{"lowsel/plain", workload.TreeNode(1 << 7), false},
		{"lowsel/magic", workload.TreeNode(1 << 7), true},
		{"fullsel/plain", workload.TreeNode(1), false},
		{"fullsel/magic", workload.TreeNode(1), true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			q := fmt.Sprintf("?- ancestor(%s, W).", c.node)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, tb, q, &dkbms.QueryOptions{NoOptimize: !c.magic})
			}
		})
	}
}

// BenchmarkFig14MagicPhases — Test 7 / Fig 14: magic-rules vs
// modified-rules phase times as metrics.
func BenchmarkFig14MagicPhases(b *testing.B) {
	tb := treeTestbed(b, 10)
	q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(4))
	var last *dkbms.QueryResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = runQuery(b, tb, q, nil)
	}
	b.StopTimer()
	var magicT, modT float64
	for _, ns := range last.Eval.Nodes {
		isMagic := false
		for _, p := range ns.Preds {
			if len(p) > 2 && p[:2] == "m_" {
				isMagic = true
			}
		}
		if isMagic {
			magicT += float64(ns.Elapsed.Microseconds())
		} else {
			modT += float64(ns.Elapsed.Microseconds())
		}
	}
	b.ReportMetric(magicT, "magicphase-us")
	b.ReportMetric(modT, "modphase-us")
}

// BenchmarkFig15UpdateVsStoredRules — Test 8 / Fig 15: one-rule update
// into a 189-rule store, compiled vs source-only rule storage.
func BenchmarkFig15UpdateVsStoredRules(b *testing.B) {
	for _, compiled := range []bool{true, false} {
		name := "compiled"
		opts := stored.Options{}
		if !compiled {
			name = "source-only"
			opts = stored.Options{NoCompiledRules: true}
		}
		b.Run(name, func(b *testing.B) {
			d := db.OpenMemory()
			b.Cleanup(func() { d.Close() })
			m, err := stored.Open(d, opts)
			if err != nil {
				b.Fatal(err)
			}
			rules, heads, bases := workload.RuleChains(21, 9)
			for _, base := range bases {
				if err := m.InsertFacts(base, workload.ChainFacts()); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.Update(rules); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rule := dlog.MustParseClause(fmt.Sprintf(
					"bnew%d(X, Y) :- %s(X, Y).", i, heads[0]))
				if _, err := m.Update([]dlog.Clause{rule}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable8UpdateBreakdown — Test 9 / Table 8: a 36-rule
// workspace update into a 189-rule store; phase shares as metrics.
func BenchmarkTable8UpdateBreakdown(b *testing.B) {
	var last stored.UpdateStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := db.OpenMemory()
		m, err := stored.Open(d, stored.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rules, heads, bases := workload.RuleChains(21, 9)
		for _, base := range bases {
			if err := m.InsertFacts(base, workload.ChainFacts()); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Update(rules); err != nil {
			b.Fatal(err)
		}
		var ws []dlog.Clause
		for c := 0; c < 9; c++ {
			for j := 0; j < 4; j++ {
				body := fmt.Sprintf("w%d_%d", c, j+1)
				if j == 3 {
					body = heads[c]
				}
				ws = append(ws, dlog.MustParseClause(fmt.Sprintf(
					"w%d_%d(X, Y) :- %s(X, Y).", c, j, body)))
			}
		}
		b.StartTimer()
		st, err := m.Update(ws)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		last = st
		d.Close()
		b.StartTimer()
	}
	b.StopTimer()
	if last.Total > 0 {
		b.ReportMetric(100*float64(last.Extract)/float64(last.Total), "%extract")
		b.ReportMetric(100*float64(last.TC)/float64(last.Total), "%closure")
		b.ReportMetric(100*float64(last.Store)/float64(last.Total), "%store")
	}
}

// BenchmarkAblationTCOperator — paper conclusion 8: the in-DBMS
// transitive-closure operator vs the SQL-interface LFP loop.
func BenchmarkAblationTCOperator(b *testing.B) {
	tb := treeTestbed(b, 10)
	node := workload.TreeNode(2)
	b.Run("sql-lfp", func(b *testing.B) {
		q := fmt.Sprintf("?- ancestor(%s, W).", node)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, tb, q, nil)
		}
	})
	b.Run("tc-operator", func(b *testing.B) {
		seed := rel.NewString(node)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rtlib.TC(tb.DB(), "parent", &seed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryEndToEnd is the headline number: compile + evaluate the
// bound ancestor query, everything included.
func BenchmarkQueryEndToEnd(b *testing.B) {
	tb := treeTestbed(b, 8)
	q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runQuery(b, tb, q, nil)
	}
}

// BenchmarkQueryTrace pins the observability overhead contract from
// both sides: "off" is the same end-to-end query with the instrumented
// code paths compiled in but tracing disabled (must match
// BenchmarkQueryEndToEnd within noise), "on" shows what full span
// recording costs when requested.
func BenchmarkQueryTrace(b *testing.B) {
	for _, mode := range []struct {
		name  string
		trace bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tb := treeTestbed(b, 8)
			q := fmt.Sprintf("?- ancestor(%s, W).", workload.TreeNode(2))
			opts := &dkbms.QueryOptions{Trace: mode.trace}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runQuery(b, tb, q, opts)
			}
		})
	}
}
