package dkbms

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// coldKey re-derives the query from scratch (bypassing any memo by
// flushing the cache) and canonicalizes the answer. Used as ground
// truth against maintained results.
func coldKey(t *testing.T, c *ConcurrentTestbed, q string) string {
	t.Helper()
	c.Resync()
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rowsKey(res)
}

// TestMatViewInsertPropagation: a fact commit below the Auto crossover
// is folded into the memoized answer by semi-naive delta propagation;
// the next repeat serves it as "maintained" and the rows are exactly
// what a cold re-derivation produces.
func TestMatViewInsertPropagation(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("cold query: %d rows, want 15", len(res.Rows))
	}
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "maintained" {
		t.Fatalf("insert commit: cache=%q, want \"maintained\"", res.Cache)
	}
	got := rowsKey(res)
	if len(res.Rows) != 16 {
		t.Fatalf("maintained answer has %d rows, want 16", len(res.Rows))
	}
	st := c.MatViewStats()
	if st.Maintained == 0 || st.Live != 1 {
		t.Fatalf("maintenance did not run: %+v", st)
	}
	if st.DeltaTuples == 0 {
		t.Fatalf("maintenance propagated no delta tuples: %+v", st)
	}
	if want := coldKey(t, c, q); got != want {
		t.Fatalf("maintained answer diverged from cold re-derivation:\n got %s\nwant %s", got, want)
	}
}

// TestMatViewDeletePropagation: a retract runs Delete-and-Rederive on
// the view. The chain's last edge removal must delete exactly the
// tuples that lose all derivations, matching a cold re-derivation.
func TestMatViewDeletePropagation(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	if _, err := c.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := c.RetractSrc("parent(c14, c15)"); err != nil || n != 1 {
		t.Fatalf("retract: %d, %v", n, err)
	}
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "maintained" {
		t.Fatalf("delete commit: cache=%q, want \"maintained\"", res.Cache)
	}
	got := rowsKey(res)
	if len(res.Rows) != 14 {
		t.Fatalf("maintained answer has %d rows, want 14", len(res.Rows))
	}
	if want := coldKey(t, c, q); got != want {
		t.Fatalf("DRed answer diverged from cold re-derivation:\n got %s\nwant %s", got, want)
	}
}

// TestMatViewMixedCommit: a single LOAD both extending one branch and
// (separately) a retract, interleaved, keeps the maintained answer
// exact through inserts and deletes against the same view.
func TestMatViewMixedCommit(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	if _, err := c.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		apply func() error
		rows  int
	}{
		{func() error { return c.Load("parent(c15, c16).") }, 16},
		{func() error { _, err := c.RetractSrc("parent(c15, c16)"); return err }, 15},
		{func() error { return c.Load("parent(c3, x0). parent(x0, x1).") }, 17},
		{func() error { _, err := c.RetractSrc("parent(c3, x0)"); return err }, 15},
	}
	for i, s := range steps {
		if err := s.apply(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		res, err := c.Query(q, nil)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.Cache != "maintained" {
			t.Fatalf("step %d: cache=%q, want \"maintained\"", i, res.Cache)
		}
		if len(res.Rows) != s.rows {
			t.Fatalf("step %d: %d rows, want %d", i, len(res.Rows), s.rows)
		}
	}
	// Ground truth for the final state.
	res, _ := c.Query(q, nil)
	got := rowsKey(res)
	if want := coldKey(t, c, q); got != want {
		t.Fatalf("final maintained state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestMatViewAutoFallback: past the cost crossover (delta > rows/4,
// floor 16) the Auto policy drops the memo and re-derives instead of
// propagating a huge delta; MaintIncremental keeps maintaining anyway.
func TestMatViewAutoFallback(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	if _, err := c.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	// 17 new edges off one node: relevant delta 17 > max(16, 15/4).
	var src strings.Builder
	for i := 0; i < 17; i++ {
		fmt.Fprintf(&src, "parent(c1, f%d).\n", i)
	}
	if err := c.Load(src.String()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "plan" {
		t.Fatalf("big delta under Auto: cache=%q, want \"plan\" (re-derive)", res.Cache)
	}
	if len(res.Rows) != 32 {
		t.Fatalf("re-derived answer has %d rows, want 32", len(res.Rows))
	}
	if st := c.MatViewStats(); st.Rederives == 0 {
		t.Fatalf("fallback not counted: %+v", st)
	}

	// Pinned to MaintIncremental the same commit shape is maintained.
	ci := snapshotChain(t)
	opts := &QueryOptions{Maintenance: MaintIncremental}
	if _, err := ci.Query(q, opts); err != nil {
		t.Fatal(err)
	}
	if err := ci.Load(src.String()); err != nil {
		t.Fatal(err)
	}
	res, err = ci.Query(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "maintained" {
		t.Fatalf("big delta under Incremental: cache=%q, want \"maintained\"", res.Cache)
	}
	if len(res.Rows) != 32 {
		t.Fatalf("incremental answer has %d rows, want 32", len(res.Rows))
	}
}

// TestMatViewRederivePolicy: pinned to MaintRederive no view is kept at
// all — commits drop the memo and Views() stays empty.
func TestMatViewRederivePolicy(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	opts := &QueryOptions{Maintenance: MaintRederive}
	if _, err := c.Query(q, opts); err != nil {
		t.Fatal(err)
	}
	if views := c.Views(); len(views) != 0 {
		t.Fatalf("MaintRederive kept a view: %+v", views)
	}
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "plan" {
		t.Fatalf("rederive policy: cache=%q, want \"plan\"", res.Cache)
	}
}

// TestMatViewViewsAccessor: Views() reports the live maintained views
// with their policy, size and maintenance counters.
func TestMatViewViewsAccessor(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	if _, err := c.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	views := c.Views()
	if len(views) != 1 {
		t.Fatalf("%d views, want 1", len(views))
	}
	v := views[0]
	if v.Query != q {
		t.Fatalf("view query %q, want %q", v.Query, q)
	}
	if v.Policy != MaintAuto {
		t.Fatalf("view policy %v, want auto", v.Policy)
	}
	if v.Rows != 16 || v.Maintains != 1 {
		t.Fatalf("view state %+v, want 16 rows / 1 maintain", v)
	}
	if v.LastDeltaTuples == 0 {
		t.Fatalf("view recorded no delta: %+v", v)
	}
	// Resync flushes every view.
	c.Resync()
	if views := c.Views(); len(views) != 0 {
		t.Fatalf("Resync left %d views live", len(views))
	}
	if st := c.MatViewStats(); st.Live != 0 {
		t.Fatalf("Live gauge after flush: %+v", st)
	}
}

// TestMatViewDepsReuse: re-storing a result for an unchanged compiled
// program must reuse the entry's dependency list instead of recomputing
// it per store (the old code re-derived depTables on every overwrite).
func TestMatViewDepsReuse(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	opts := &QueryOptions{Maintenance: MaintRederive}
	if _, err := c.Query(q, opts); err != nil {
		t.Fatal(err)
	}
	grab := func() (*planEntry, *string) {
		c.plans.mu.Lock()
		defer c.plans.mu.Unlock()
		if len(c.plans.entries) != 1 {
			t.Fatalf("%d cache entries, want 1", len(c.plans.entries))
		}
		for _, e := range c.plans.entries {
			if len(e.deps) == 0 {
				t.Fatal("entry has no dependency tables")
			}
			return e, &e.deps[0]
		}
		return nil, nil
	}
	e1, deps1 := grab()
	// Drop the memo (fact commit under MaintRederive), keep plan + deps.
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	// Re-evaluation stores a fresh result against the same compiled
	// program: deps must be the very same backing array.
	if _, err := c.Query(q, opts); err != nil {
		t.Fatal(err)
	}
	e2, deps2 := grab()
	if e1 != e2 {
		t.Fatal("entry identity changed across a plan-hit store")
	}
	if deps1 != deps2 {
		t.Fatal("store recomputed depTables for an unchanged compiled program")
	}
}

// TestMatViewMaintenanceStorm: readers hammer a maintained view while a
// writer toggles the chain's last edge. Every answer must be exactly
// the pre- or post-toggle closure — a maintained memo serving a torn or
// drifted row set is a correctness bug, not a staleness bug. Run under
// -race this also exercises the maintain/lookup/store interleavings.
func TestMatViewMaintenanceStorm(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."

	resA, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	closureA := rowsKey(resA) // c1..c15
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	resB, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	closureB := rowsKey(resB) // plus c16
	if closureA == closureB {
		t.Fatal("toggle states are not distinguishable")
	}
	if _, err := c.RetractSrc("parent(c15, c16)"); err != nil {
		t.Fatal(err)
	}

	readers := 8
	perReader := 40
	toggles := 80
	if testing.Short() {
		perReader, toggles = 10, 20
	}

	var wg sync.WaitGroup
	var maintained int64
	var mu sync.Mutex
	for r := 0; r < readers; r++ {
		wg.Add(1)
		//dkblint:bounded one goroutine per test reader
		go func() {
			defer wg.Done()
			seen := int64(0)
			for i := 0; i < perReader; i++ {
				res, err := c.Query(q, nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if res.Cache == "maintained" {
					seen++
				}
				if key := rowsKey(res); key != closureA && key != closureB {
					t.Errorf("maintained answer drifted at snapshot %d: %d rows",
						res.Snapshot, len(res.Rows))
					return
				}
			}
			mu.Lock()
			maintained += seen
			mu.Unlock()
		}()
	}
	wg.Add(1)
	//dkblint:bounded single writer goroutine
	go func() {
		defer wg.Done()
		for i := 0; i < toggles; i++ {
			if err := c.Load("parent(c15, c16)."); err != nil {
				t.Errorf("writer load: %v", err)
				return
			}
			if n, err := c.RetractSrc("parent(c15, c16)"); err != nil || n != 1 {
				t.Errorf("writer retract: %d, %v", n, err)
				return
			}
		}
	}()
	wg.Wait()

	// The storm must actually have exercised maintenance, and the final
	// maintained state must equal a cold re-derivation byte for byte.
	if st := c.MatViewStats(); st.Maintained == 0 {
		t.Fatalf("storm never maintained a view: %+v", st)
	}
	if st := c.MatViewStats(); st.Errors != 0 {
		t.Fatalf("maintenance errors during storm: %+v", st)
	}
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsKey(res)
	if got != closureA {
		t.Fatalf("final state is not the pre-toggle closure: %d rows", len(res.Rows))
	}
	if want := coldKey(t, c, q); got != want {
		t.Fatalf("maintained final state diverged from cold re-derivation:\n got %s\nwant %s", got, want)
	}
	_ = maintained // informational; may be 0 on fast machines where toggles outpace reads
}
