package dkbms

import (
	"sync"

	"dkbms/internal/core"
)

// DefaultPlanCacheEntries bounds the shared plan cache of a
// ConcurrentTestbed. Each entry holds one compiled evaluation program
// and, while the D/KB stands still, its memoized answer.
const DefaultPlanCacheEntries = 128

// planKey identifies a cacheable query: its source text plus the
// compilation/evaluation options (QueryOptions is a comparable struct
// of booleans, so the key is directly usable in a map).
type planKey struct {
	src  string
	opts QueryOptions
}

// planEntry is one cached compilation. The compiled program is valid
// while the rule-base generation matches; the memoized result
// additionally requires the data generation to match (LOAD/RETRACT of
// facts move it). Entries form an LRU list under the cache mutex.
type planEntry struct {
	key      planKey
	compiled *core.Compiled
	ruleGen  uint64
	result   *QueryResult
	dataGen  uint64

	prev, next *planEntry
}

// PlanCacheStats snapshots the shared plan cache's traffic counters.
type PlanCacheStats struct {
	// ResultHits counts queries answered entirely from the memoized
	// result (no compilation, no evaluation).
	ResultHits int64
	// PlanHits counts queries that reused a compiled program but
	// re-evaluated it (the data generation had moved).
	PlanHits int64
	// Misses counts full compilations.
	Misses int64
	// Invalidations counts entries dropped because a rule-base change
	// outdated their compiled program.
	Invalidations int64
	// Entries is the current cache population.
	Entries int64
}

// planCache is the server-wide compiled-plan and result cache behind
// ConcurrentTestbed.Query. It is safe for concurrent use; lookups and
// stores run under the testbed's read lock from many sessions at once.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planKey]*planEntry
	head     *planEntry // most recently used
	tail     *planEntry // least recently used
	stats    PlanCacheStats
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[planKey]*planEntry, capacity),
	}
}

// lookup returns the cached compilation for the key, if its generations
// still hold: (compiled, result) on a full result hit, (compiled, nil)
// when only the plan is reusable, (nil, nil) on a miss. Hit counters are
// updated here; the miss counter is charged in store, so a lookup/store
// pair counts once.
func (pc *planCache) lookup(key planKey, ruleGen, dataGen uint64) (*core.Compiled, *QueryResult) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		return nil, nil
	}
	if e.ruleGen != ruleGen {
		// The rule base moved: the compiled program is stale.
		pc.unlink(e)
		delete(pc.entries, key)
		pc.stats.Invalidations++
		return nil, nil
	}
	pc.touch(e)
	if e.result != nil && e.dataGen == dataGen {
		pc.stats.ResultHits++
		return e.compiled, e.result
	}
	pc.stats.PlanHits++
	return e.compiled, nil
}

// store records a compilation and its result, evicting the least
// recently used entry beyond capacity. A nil result stores the plan
// without touching any memoized answer (traced runs share plans with
// untraced queries but never publish their answers).
func (pc *planCache) store(key planKey, ruleGen uint64, compiled *core.Compiled, dataGen uint64, result *QueryResult) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		// A concurrent reader (or this one, refreshing a stale result)
		// raced us here; keep the newest state.
		if e.compiled != compiled {
			pc.stats.Misses++
		}
		e.compiled, e.ruleGen = compiled, ruleGen
		if result != nil {
			e.result, e.dataGen = result, dataGen
		}
		pc.touch(e)
		return
	}
	pc.stats.Misses++
	e := &planEntry{key: key, compiled: compiled, ruleGen: ruleGen, result: result, dataGen: dataGen}
	pc.entries[key] = e
	pc.pushFront(e)
	for len(pc.entries) > pc.capacity {
		lru := pc.tail
		pc.unlink(lru)
		delete(pc.entries, lru.key)
	}
}

// purgeStale runs after an exclusive update: entries compiled at an old
// rule-base generation are dropped, and memoized results from an old
// data generation are cleared (their plans stay).
func (pc *planCache) purgeStale(ruleGen, dataGen uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		if e.ruleGen != ruleGen {
			pc.unlink(e)
			delete(pc.entries, key)
			pc.stats.Invalidations++
			continue
		}
		if e.dataGen != dataGen {
			e.result = nil
		}
	}
}

// snapshot returns the counters plus current population.
func (pc *planCache) snapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := pc.stats
	out.Entries = int64(len(pc.entries))
	return out
}

// --- LRU list maintenance (caller holds mu) ---

func (pc *planCache) pushFront(e *planEntry) {
	e.prev = nil
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

func (pc *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pc *planCache) touch(e *planEntry) {
	pc.unlink(e)
	pc.pushFront(e)
}
