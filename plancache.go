package dkbms

import (
	"fmt"
	"sync"

	"dkbms/internal/codegen"
	"dkbms/internal/core"
	"dkbms/internal/db"
	"dkbms/internal/matview"
	"dkbms/internal/sched"
	"dkbms/internal/snapshot"
)

// DefaultPlanCacheEntries bounds the shared plan cache of a
// ConcurrentTestbed. Each entry holds one compiled evaluation program
// and, while the tables it reads stand still, its memoized answer.
const DefaultPlanCacheEntries = 128

// planKey identifies a cacheable query: its source text plus the
// compilation/evaluation options (QueryOptions is a comparable struct,
// so the key is directly usable in a map).
type planKey struct {
	src  string
	opts QueryOptions
}

// planEntry is one cached compilation. The compiled program is valid
// while the rule-base generation matches (rule changes alter the
// generated program). The memoized result carries a per-table validity
// vector instead of a global data generation: the base tables the
// program reads, each with the version generation it was evaluated
// against. A result is served only to snapshots in which every
// dependency reports the recorded generation — so updates to unrelated
// tables never evict it. Entries form an LRU list under the cache
// mutex.
type planEntry struct {
	key      planKey
	compiled *core.Compiled
	ruleGen  uint64
	// deps are the base-table names the compiled program reads
	// (derived from Program.BasePreds once per program, at store time).
	deps []string
	// result is the memoized answer; resultVec maps each dependency to
	// the table-version generation the answer was computed against
	// (0 = table absent in that snapshot).
	result    *QueryResult
	resultVec map[string]uint64
	// view, when non-nil, owns the evaluation's derived relations so
	// commits can maintain result in place instead of dropping it;
	// policy is the resolved maintenance policy it was stored under.
	// maintained marks a result refreshed by maintenance (served as
	// Cache "maintained" rather than "result").
	view       *matview.View
	policy     MaintenancePolicy
	maintained bool

	prev, next *planEntry
}

// PlanCacheStats snapshots the shared plan cache's traffic counters.
type PlanCacheStats struct {
	// ResultHits counts queries answered entirely from the memoized
	// result (no compilation, no evaluation) — including answers kept
	// current by view maintenance.
	ResultHits int64
	// PlanHits counts queries that reused a compiled program but
	// re-evaluated it (a base table the program reads had moved).
	PlanHits int64
	// Misses counts full compilations.
	Misses int64
	// Invalidations counts entries dropped because a rule-base change
	// outdated their compiled program (or an explicit flush).
	Invalidations int64
	// Entries is the current cache population.
	Entries int64
}

// planCache is the server-wide compiled-plan and result cache behind
// ConcurrentTestbed.Query. It is safe for concurrent use; lookups and
// stores run from many pinned-snapshot readers at once, while
// Invalidate (view maintenance, condemned-table teardown) runs only
// from the single writer holding the commit mutex.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planKey]*planEntry
	head     *planEntry // most recently used
	tail     *planEntry // least recently used
	stats    PlanCacheStats

	// db is the live database view maintenance runs against; pool,
	// when non-nil, parallelizes maintenance across views. Both are
	// set once at wiring time (NewConcurrentWithOptions), before any
	// concurrent use.
	db   *db.DB
	pool *sched.Pool
	// mv aggregates maintenance telemetry across the cache's views.
	mv matview.Counters
	// condemned are views whose entries were replaced or evicted by
	// readers: readers must not drop tables (the writer may be
	// maintaining the view at that moment), so teardown is deferred to
	// the writer, which drains the list at the end of each Invalidate.
	condemned []*matview.View
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[planKey]*planEntry, capacity),
	}
}

// depTables maps a compiled program to the base tables it reads, in
// first-appearance order without duplicates.
func depTables(compiled *core.Compiled) []string {
	seen := make(map[string]struct{}, len(compiled.Program.BasePreds))
	out := make([]string, 0, len(compiled.Program.BasePreds))
	for _, p := range compiled.Program.BasePreds {
		t := codegen.BaseTable(p)
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// assertDeps panics when a reused dependency list no longer covers the
// program's base predicates — the validity vector would silently stop
// guarding a table, serving stale answers forever.
func assertDeps(deps []string, compiled *core.Compiled) {
	set := make(map[string]struct{}, len(deps))
	for _, t := range deps {
		set[t] = struct{}{}
	}
	for _, p := range compiled.Program.BasePreds {
		if _, ok := set[codegen.BaseTable(p)]; !ok {
			panic(fmt.Sprintf("dkbms: plan-cache deps %v miss base predicate %s", deps, p))
		}
	}
}

// lookup returns the cached compilation for the key as seen from the
// given snapshot: (compiled, result, maintained) on a full result hit —
// every base table the program reads is at the generation the answer
// was computed against, maintained reporting whether that answer was
// last refreshed by view maintenance — (compiled, nil, false) when only
// the plan is reusable, (nil, nil, false) on a miss. Hit counters are
// updated here; the miss counter is charged in store, so a lookup/store
// pair counts once.
func (pc *planCache) lookup(key planKey, snap *snapshot.Snapshot) (*core.Compiled, *QueryResult, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		return nil, nil, false
	}
	if e.ruleGen != snap.RuleGen {
		// The rule base moved: the compiled program is stale.
		pc.dropLocked(e)
		pc.stats.Invalidations++
		return nil, nil, false
	}
	pc.touch(e)
	if e.result != nil && vecCurrent(e.resultVec, snap) {
		pc.stats.ResultHits++
		return e.compiled, e.result, e.maintained
	}
	pc.stats.PlanHits++
	return e.compiled, nil, false
}

// vecCurrent reports whether every dependency in the vector is at the
// recorded table-version generation in the snapshot. An absent table
// records generation 0, which stays valid exactly until the table
// appears (generations start at 1).
func vecCurrent(vec map[string]uint64, snap *snapshot.Snapshot) bool {
	for name, gen := range vec {
		if snap.TableGen(name) != gen {
			return false
		}
	}
	return true
}

// store records a compilation and its result as evaluated against the
// given snapshot, evicting the least recently used entry beyond
// capacity. A nil result stores the plan without touching any memoized
// answer or view (traced runs share plans with untraced queries but
// never publish their answers). A non-nil view transfers ownership of
// the evaluation's derived relations; whatever view the entry held
// before is condemned for the writer to tear down.
//
// Racing stores for one key (readers pinned to different snapshots)
// need no ordering: a result stored with an older dependency vector
// simply fails validation for newer snapshots at lookup time.
func (pc *planCache) store(key planKey, snap *snapshot.Snapshot, compiled *core.Compiled, result *QueryResult, view *matview.View, policy MaintenancePolicy) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	var deps []string
	if ok && e.compiled == compiled {
		// Same program: the dependency set is a pure function of it, so
		// reuse the list instead of recomputing per store.
		deps = e.deps
		assertDeps(deps, compiled)
	} else {
		deps = depTables(compiled)
	}
	var vec map[string]uint64
	if result != nil {
		vec = make(map[string]uint64, len(deps))
		for _, name := range deps {
			vec[name] = snap.TableGen(name)
		}
	}
	if ok {
		// A concurrent reader (or this one, refreshing a stale result)
		// raced us here; keep the newest state.
		if e.compiled != compiled {
			pc.stats.Misses++
		}
		e.compiled, e.ruleGen, e.deps = compiled, snap.RuleGen, deps
		if result != nil {
			e.result, e.resultVec, e.maintained = result, vec, false
			pc.condemnLocked(e.view)
			e.view, e.policy = view, policy
		}
		pc.touch(e)
		return
	}
	pc.stats.Misses++
	e = &planEntry{key: key, compiled: compiled, ruleGen: snap.RuleGen, deps: deps,
		result: result, resultVec: vec}
	if result != nil {
		e.view, e.policy = view, policy
	} else if view != nil {
		// A traced run must not adopt a view it has no result for.
		pc.condemnLocked(view)
	}
	pc.entries[key] = e
	pc.pushFront(e)
	for len(pc.entries) > pc.capacity {
		pc.dropLocked(pc.tail)
	}
}

// dropLocked removes an entry, condemning its view. Caller holds mu.
func (pc *planCache) dropLocked(e *planEntry) {
	pc.unlink(e)
	delete(pc.entries, e.key)
	pc.condemnLocked(e.view)
	e.view = nil
}

// condemnLocked queues a replaced or evicted view for teardown by the
// writer. Caller holds mu.
func (pc *planCache) condemnLocked(v *matview.View) {
	if v != nil {
		pc.condemned = append(pc.condemned, v)
	}
}

// Invalidate reconciles the cache with one published commit. It runs on
// the single-writer commit path (caller holds the commit mutex), with
// prev the snapshot the commit superseded, next the one it published
// and ev the typed description of what the commit did — nil meaning an
// unknown mutation (failed commits publish conservatively), which
// drops stale memos like EventRuleGen does.
//
// Entries whose compiled program predates next's rule generation are
// dropped. Entries whose memo went stale with exactly this commit
// (valid against prev, stale against next) are maintained in place when
// the event carries fact deltas and the entry's policy allows it;
// otherwise the memo is dropped and the plan kept. Maintenance runs
// after the cache mutex is released — concurrent readers keep hitting
// the plan — and each refreshed answer installs only if the entry still
// holds the same view (a racing reader may have replaced it). Condemned
// views' tables are torn down at the end: only here is it safe, because
// no maintenance can be running without commitMu.
func (pc *planCache) Invalidate(prev, next *snapshot.Snapshot, ev *matview.Event) {
	type job struct {
		e      *planEntry
		view   *matview.View
		result *QueryResult
	}
	var jobs []job
	flush := ev != nil && ev.Kind == matview.EventFlush
	commit := ev != nil && ev.Kind == matview.EventCommit
	//dkblint:locksafe released before maintenance runs, Group.Wait and drainCondemned (explicit Unlock below, not deferred)
	pc.mu.Lock()
	for _, e := range pc.entries {
		if flush || e.ruleGen != next.RuleGen {
			pc.dropLocked(e)
			pc.stats.Invalidations++
			continue
		}
		if e.result == nil || vecCurrent(e.resultVec, next) {
			continue // no memo, or untouched by this commit
		}
		// The memo went stale with this commit. Maintain it when the
		// commit is an exact fact delta, the entry owns a view, and the
		// delta is worth it; otherwise drop the memo, keep the plan.
		ok := commit && e.view != nil && e.policy != MaintRederive &&
			prev != nil && vecCurrent(e.resultVec, prev)
		if ok && e.policy == MaintAuto {
			ok = matview.AutoIncremental(ev.RelevantSize(e.deps), len(e.result.Rows))
		}
		if !ok {
			if e.view != nil {
				pc.mv.Rederives.Add(1)
				pc.condemnLocked(e.view)
				e.view = nil
			}
			e.result, e.resultVec, e.maintained = nil, nil, false
			continue
		}
		jobs = append(jobs, job{e, e.view, e.result})
	}
	pc.mu.Unlock()

	run := func(j job) {
		rows, err := j.view.Maintain(pc.db, ev)
		pc.mu.Lock()
		defer pc.mu.Unlock()
		if j.e.view != j.view {
			// A racing reader replaced the entry (fresh evaluation,
			// already-current answer) while we maintained: its state
			// wins, ours was condemned at replacement.
			return
		}
		if err != nil {
			pc.mv.Errors.Add(1)
			pc.condemnLocked(j.e.view)
			j.e.view = nil
			j.e.result, j.e.resultVec, j.e.maintained = nil, nil, false
			return
		}
		// Refresh onto a copy: the old result struct and row slice are
		// shared with readers that hit it earlier.
		nr := *j.result
		nr.Rows = rows
		vec := make(map[string]uint64, len(j.e.deps))
		for _, name := range j.e.deps {
			vec[name] = next.TableGen(name)
		}
		j.e.result, j.e.resultVec, j.e.maintained = &nr, vec, true
		pc.mv.Maintained.Add(1)
		pc.mv.DeltaTuples.Add(j.view.LastDeltaTuples())
		pc.mv.MaintainNs.Add(int64(j.view.LastDuration()))
	}
	if len(jobs) > 1 && pc.pool != nil {
		// Independent views touch disjoint temp tables; propagate their
		// deltas in parallel on the shared evaluation pool.
		cl := pc.pool.NewClient()
		g := cl.Group()
		for _, j := range jobs {
			j := j
			g.Go(func(int) { run(j) })
		}
		g.Wait()
		cl.Close()
	} else {
		for _, j := range jobs {
			run(j)
		}
	}
	pc.drainCondemned()
}

// drainCondemned tears down replaced/evicted views' temp tables. Only
// the writer calls it (from Invalidate, under the commit mutex), so a
// condemned view is never mid-maintenance when its tables drop.
func (pc *planCache) drainCondemned() {
	pc.mu.Lock()
	doomed := pc.condemned
	pc.condemned = nil
	pc.mu.Unlock()
	for _, v := range doomed {
		if err := v.Drop(pc.db); err != nil {
			pc.mv.Errors.Add(1)
		}
	}
}

// views lists the maintained views, most recently used first.
func (pc *planCache) views() []MaterializedView {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var out []MaterializedView
	for e := pc.head; e != nil; e = e.next {
		if e.view == nil {
			continue
		}
		out = append(out, MaterializedView{
			Query:           e.key.src,
			Policy:          e.policy,
			Rows:            len(e.result.Rows),
			Maintains:       e.view.Maintains(),
			LastDeltaTuples: e.view.LastDeltaTuples(),
			LastDuration:    e.view.LastDuration(),
		})
	}
	return out
}

// mvStats snapshots the maintenance counters plus the live-view gauge.
func (pc *planCache) mvStats() matview.Stats {
	st := pc.mv.Snapshot()
	pc.mu.Lock()
	for e := pc.head; e != nil; e = e.next {
		if e.view != nil {
			st.Live++
		}
	}
	pc.mu.Unlock()
	return st
}

// snapshot returns the counters plus current population.
func (pc *planCache) snapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := pc.stats
	out.Entries = int64(len(pc.entries))
	return out
}

// --- LRU list maintenance (caller holds mu) ---

func (pc *planCache) pushFront(e *planEntry) {
	e.prev = nil
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

func (pc *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pc *planCache) touch(e *planEntry) {
	pc.unlink(e)
	pc.pushFront(e)
}
