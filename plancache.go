package dkbms

import (
	"sync"

	"dkbms/internal/codegen"
	"dkbms/internal/core"
	"dkbms/internal/snapshot"
)

// DefaultPlanCacheEntries bounds the shared plan cache of a
// ConcurrentTestbed. Each entry holds one compiled evaluation program
// and, while the tables it reads stand still, its memoized answer.
const DefaultPlanCacheEntries = 128

// planKey identifies a cacheable query: its source text plus the
// compilation/evaluation options (QueryOptions is a comparable struct
// of booleans, so the key is directly usable in a map).
type planKey struct {
	src  string
	opts QueryOptions
}

// planEntry is one cached compilation. The compiled program is valid
// while the rule-base generation matches (rule changes alter the
// generated program). The memoized result carries a per-table validity
// vector instead of a global data generation: the base tables the
// program reads, each with the version generation it was evaluated
// against. A result is served only to snapshots in which every
// dependency reports the recorded generation — so updates to unrelated
// tables never evict it. Entries form an LRU list under the cache
// mutex.
type planEntry struct {
	key      planKey
	compiled *core.Compiled
	ruleGen  uint64
	// deps are the base-table names the compiled program reads
	// (derived from Program.BasePreds once, at store time).
	deps []string
	// result is the memoized answer; resultVec maps each dependency to
	// the table-version generation the answer was computed against
	// (0 = table absent in that snapshot).
	result    *QueryResult
	resultVec map[string]uint64

	prev, next *planEntry
}

// PlanCacheStats snapshots the shared plan cache's traffic counters.
type PlanCacheStats struct {
	// ResultHits counts queries answered entirely from the memoized
	// result (no compilation, no evaluation).
	ResultHits int64
	// PlanHits counts queries that reused a compiled program but
	// re-evaluated it (a base table the program reads had moved).
	PlanHits int64
	// Misses counts full compilations.
	Misses int64
	// Invalidations counts entries dropped because a rule-base change
	// outdated their compiled program.
	Invalidations int64
	// Entries is the current cache population.
	Entries int64
}

// planCache is the server-wide compiled-plan and result cache behind
// ConcurrentTestbed.Query. It is safe for concurrent use; lookups and
// stores run from many pinned-snapshot readers at once.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planKey]*planEntry
	head     *planEntry // most recently used
	tail     *planEntry // least recently used
	stats    PlanCacheStats
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[planKey]*planEntry, capacity),
	}
}

// depTables maps a compiled program to the base tables it reads, in
// first-appearance order without duplicates.
func depTables(compiled *core.Compiled) []string {
	seen := make(map[string]struct{}, len(compiled.Program.BasePreds))
	out := make([]string, 0, len(compiled.Program.BasePreds))
	for _, p := range compiled.Program.BasePreds {
		t := codegen.BaseTable(p)
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// lookup returns the cached compilation for the key as seen from the
// given snapshot: (compiled, result) on a full result hit — every base
// table the program reads is at the generation the answer was computed
// against — (compiled, nil) when only the plan is reusable, (nil, nil)
// on a miss. Hit counters are updated here; the miss counter is charged
// in store, so a lookup/store pair counts once.
func (pc *planCache) lookup(key planKey, snap *snapshot.Snapshot) (*core.Compiled, *QueryResult) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		return nil, nil
	}
	if e.ruleGen != snap.RuleGen {
		// The rule base moved: the compiled program is stale.
		pc.unlink(e)
		delete(pc.entries, key)
		pc.stats.Invalidations++
		return nil, nil
	}
	pc.touch(e)
	if e.result != nil && vecCurrent(e.resultVec, snap) {
		pc.stats.ResultHits++
		return e.compiled, e.result
	}
	pc.stats.PlanHits++
	return e.compiled, nil
}

// vecCurrent reports whether every dependency in the vector is at the
// recorded table-version generation in the snapshot. An absent table
// records generation 0, which stays valid exactly until the table
// appears (generations start at 1).
func vecCurrent(vec map[string]uint64, snap *snapshot.Snapshot) bool {
	for name, gen := range vec {
		if snap.TableGen(name) != gen {
			return false
		}
	}
	return true
}

// store records a compilation and its result as evaluated against the
// given snapshot, evicting the least recently used entry beyond
// capacity. A nil result stores the plan without touching any memoized
// answer (traced runs share plans with untraced queries but never
// publish their answers).
//
// Racing stores for one key (readers pinned to different snapshots)
// need no ordering: a result stored with an older dependency vector
// simply fails validation for newer snapshots at lookup time.
func (pc *planCache) store(key planKey, snap *snapshot.Snapshot, compiled *core.Compiled, result *QueryResult) {
	var vec map[string]uint64
	deps := depTables(compiled)
	if result != nil {
		vec = make(map[string]uint64, len(deps))
		for _, name := range deps {
			vec[name] = snap.TableGen(name)
		}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		// A concurrent reader (or this one, refreshing a stale result)
		// raced us here; keep the newest state.
		if e.compiled != compiled {
			pc.stats.Misses++
		}
		e.compiled, e.ruleGen, e.deps = compiled, snap.RuleGen, deps
		if result != nil {
			e.result, e.resultVec = result, vec
		}
		pc.touch(e)
		return
	}
	pc.stats.Misses++
	e := &planEntry{key: key, compiled: compiled, ruleGen: snap.RuleGen, deps: deps,
		result: result, resultVec: vec}
	pc.entries[key] = e
	pc.pushFront(e)
	for len(pc.entries) > pc.capacity {
		lru := pc.tail
		pc.unlink(lru)
		delete(pc.entries, lru.key)
	}
}

// purgeStale runs after a commit publishes a new snapshot: entries
// compiled at an old rule-base generation are dropped. Memoized
// results are left in place — their per-table vectors are validated
// lazily at lookup, so a commit invalidates only the queries that read
// the tables it touched.
func (pc *planCache) purgeStale(snap *snapshot.Snapshot) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		if e.ruleGen != snap.RuleGen {
			pc.unlink(e)
			delete(pc.entries, key)
			pc.stats.Invalidations++
		}
	}
}

// purgeAll drops every entry (after an out-of-band mutation of the
// wrapped testbed, which moves no generations — see
// ConcurrentTestbed.Resync).
func (pc *planCache) purgeAll() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		pc.unlink(e)
		delete(pc.entries, key)
		pc.stats.Invalidations++
	}
}

// snapshot returns the counters plus current population.
func (pc *planCache) snapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := pc.stats
	out.Entries = int64(len(pc.entries))
	return out
}

// --- LRU list maintenance (caller holds mu) ---

func (pc *planCache) pushFront(e *planEntry) {
	e.prev = nil
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

func (pc *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pc *planCache) touch(e *planEntry) {
	pc.unlink(e)
	pc.pushFront(e)
}
