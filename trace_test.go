package dkbms

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dkbms/internal/obs"
	"dkbms/internal/workload"
)

// sumDeltas adds up the per-iteration delta(pred) attributes across the
// whole trace (the "iteration 0" seed span included). For an unbound
// query over one recursive clique this must equal the answer row count:
// every answer tuple is new in exactly one iteration.
func sumDeltas(root *obs.Span, pred string) (sum int64, loopIters int) {
	for _, it := range root.FindAll("iteration ") {
		if d, ok := it.Int("delta(" + pred + ")"); ok {
			sum += d
		}
		if it.Name != "iteration 0" {
			loopIters++
		}
	}
	return sum, loopIters
}

// TestTraceAncestorIterations pins the trace against the known answers
// of EXPERIMENTS.md Test 6: ancestor on a 1022-edge full binary tree
// reaches fixpoint in 10 naive / 9 semi-naive iterations, and the
// per-iteration delta cardinalities sum to the closure size.
func TestTraceAncestorIterations(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.AssertTuples("parent", workload.FullBinaryTree(10)); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`)
	// Closure of a depth-10 full binary tree: each node at depth d has d
	// proper ancestors, so |ancestor| = sum d*2^d for d=1..9 = 8194.
	const wantRows = 8194
	cases := []struct {
		name  string
		opts  QueryOptions
		iters int
	}{
		{"naive", QueryOptions{Naive: true, NoOptimize: true, Trace: true}, 10},
		{"semi-naive", QueryOptions{NoOptimize: true, Trace: true}, 9},
		{"parallel", QueryOptions{Parallel: true, NoOptimize: true, Trace: true}, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			res, err := tb.Query("?- ancestor(X, W).", &opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != wantRows {
				t.Fatalf("%d rows, want %d", len(res.Rows), wantRows)
			}
			root := res.Trace.Root()
			if root == nil {
				t.Fatal("Trace requested but absent from the result")
			}
			sum, iters := sumDeltas(root, "ancestor")
			if iters != tc.iters {
				t.Errorf("%d LFP iterations, want %d", iters, tc.iters)
			}
			if sum != wantRows {
				t.Errorf("iteration deltas sum to %d, want %d", sum, wantRows)
			}
			// The compile phases and the eval span must both be present.
			if root.Find("compile") == nil || root.Find("eval") == nil {
				t.Errorf("missing compile/eval spans:\n%s", res.Trace.Format())
			}
		})
	}
}

// TestTraceOperatorCounts checks the per-operator row counters: the
// exit rule of the ancestor clique scans the 1022-tuple parent relation
// and its top operator emits exactly those 1022 seed tuples.
func TestTraceOperatorCounts(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.AssertTuples("parent", workload.FullBinaryTree(10)); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`)
	res, err := tb.Query("?- ancestor(X, W).", &QueryOptions{NoOptimize: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Trace.Root()
	zero := root.Find("iteration 0")
	if zero == nil {
		t.Fatalf("no iteration 0 span:\n%s", res.Trace.Format())
	}
	rule := zero.Find("rule ancestor")
	if rule == nil || len(rule.Children) == 0 {
		t.Fatalf("exit rule carries no operator tree:\n%s", res.Trace.Format())
	}
	// The rule span's direct child is the root of the operator tree; the
	// exit rule ancestor(X,Y) :- parent(X,Y) emits one tuple per edge.
	top := rule.Children[0]
	if rows, ok := top.Int("rows"); !ok || rows != 1022 {
		t.Errorf("exit-rule top operator %q emitted %d rows, want 1022", top.Name, rows)
	}
	scans := rule.FindAll("scan(")
	scans = append(scans, rule.FindAll("idxscan(")...)
	if len(scans) == 0 {
		t.Errorf("no scan operator under the exit rule:\n%s", res.Trace.Format())
	}
	// The formatted tree is the shell's .trace output; spot-check shape.
	text := res.Trace.Format()
	if !strings.Contains(text, "iteration 1") || !strings.Contains(text, "delta(ancestor)=") {
		t.Errorf("formatted trace lacks iteration detail:\n%s", text)
	}
}

// TestTraceSameGeneration runs the classic same-generation workload
// with tracing under all three strategies and checks the delta-sum
// invariant against the hand-computed closure (14 sg pairs).
func TestTraceSameGeneration(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
up(a, root). up(b, root). up(c, a). up(d, a). up(e, b).
flat(root, root).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
down(X, Y) :- up(Y, X).
`)
	// sg closure: (root,root); {a,b}x{a,b}; then {c,d,e} pairs sharing
	// grandparent generation — 1 + 4 + 9 = 14 tuples.
	const wantRows = 14
	for _, tc := range []struct {
		name string
		opts QueryOptions
	}{
		{"naive", QueryOptions{Naive: true, NoOptimize: true, Trace: true}},
		{"semi-naive", QueryOptions{NoOptimize: true, Trace: true}},
		{"parallel", QueryOptions{Parallel: true, NoOptimize: true, Trace: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			res, err := tb.Query("?- sg(X, Y).", &opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != wantRows {
				t.Fatalf("%d rows, want %d", len(res.Rows), wantRows)
			}
			sum, iters := sumDeltas(res.Trace.Root(), "sg")
			if sum != wantRows {
				t.Errorf("iteration deltas sum to %d, want %d:\n%s", sum, wantRows, res.Trace.Format())
			}
			if iters < 3 {
				t.Errorf("only %d LFP iterations; want at least 3 (new tuples at depths 1 and 2, plus the empty fixpoint round)", iters)
			}
		})
	}
}

// TestTraceOffByDefault: without the option no trace is built, and the
// result (plan-cache interactions included) stays trace-free.
func TestTraceOffByDefault(t *testing.T) {
	tb := familyTB(t)
	res, err := tb.Query("?- parent(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced query carries a trace")
	}
}

// cancelAfter is a context whose Err() trips after a fixed number of
// polls: the first poll (the evaluator's upfront check) passes, a later
// one — at an LFP iteration boundary — reports cancellation. This makes
// the mid-evaluation cancel path deterministic.
type cancelAfter struct {
	context.Context
	calls, after int
}

func (c *cancelAfter) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func TestQueryContextCancel(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	if err := tb.AssertTuples("parent", workload.FullBinaryTree(6)); err != nil {
		t.Fatal(err)
	}
	tb.MustLoad(`
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`)

	// Pre-cancelled context: refused before evaluation starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tb.QueryContext(ctx, "?- ancestor(X, W).", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: %v", err)
	}

	// Expired deadline maps to DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), -1)
	defer dcancel()
	if _, err := tb.QueryContext(dctx, "?- ancestor(X, W).", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline query: %v", err)
	}

	// Cancellation mid-evaluation, at an LFP iteration boundary.
	mid := &cancelAfter{Context: context.Background(), after: 1}
	_, err := tb.QueryContext(mid, "?- ancestor(X, W).", &QueryOptions{NoOptimize: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-evaluation cancel: %v", err)
	}
	if mid.calls < 2 {
		t.Fatalf("context polled %d times; the iteration-boundary check never ran", mid.calls)
	}

	// The testbed stays usable after a cancelled evaluation.
	res, err := tb.Query("?- ancestor(X, W).", nil)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("query after cancel: %d rows, %v", len(res.Rows), err)
	}
}

func TestConcurrentQueryContextCancel(t *testing.T) {
	ctb := NewConcurrent(NewMemory())
	defer ctb.Close()
	if err := ctb.Load(`parent(a, b). ancestor(X, Y) :- parent(X, Y).`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctb.QueryContext(ctx, "?- ancestor(a, W).", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled concurrent query: %v", err)
	}
	if res, err := ctb.Query("?- ancestor(a, W).", nil); err != nil || len(res.Rows) != 1 {
		t.Fatalf("concurrent testbed unusable after cancel: %v", err)
	}
}

// TestTypedErrors walks every public mutation/query path and checks the
// error chain reaches the advertised sentinel via errors.Is.
func TestTypedErrors(t *testing.T) {
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`parent(a, b).`)

	if err := tb.Load("this is not a clause"); !errors.Is(err, ErrParse) {
		t.Errorf("Load syntax error: %v", err)
	}
	if _, err := tb.Query("?- broken(", nil); !errors.Is(err, ErrParse) {
		t.Errorf("Query syntax error: %v", err)
	}
	if _, err := tb.RetractSrc("also broken("); !errors.Is(err, ErrParse) {
		t.Errorf("Retract syntax error: %v", err)
	}
	if _, err := tb.Query("?- nosuch(X).", nil); !errors.Is(err, ErrUnknownPredicate) {
		t.Errorf("unknown predicate: %v", err)
	}
	// Asserting a non-ground fact is a semantic violation.
	if err := tb.Load("p(X)."); !errors.Is(err, ErrSemantic) {
		t.Errorf("non-ground fact: %v", err)
	}
}
