// Package dkbms is a data/knowledge base management testbed: a Go
// reproduction of the D/KBMS described in "A Data/Knowledge Base
// Management Testbed and Experimental Results on Data/Knowledge Base
// Query and Update Processing" (Ramnarayan & Lu, SIGMOD 1988).
//
// The testbed is layered exactly as the paper's system:
//
//   - a Knowledge Manager (internal/core and friends) that compiles
//     pure, function-free Horn-clause queries into evaluation programs
//     of SQL statements — rule parser, workspace and stored D/KB
//     managers, semantic checker with type inference, a generalized
//     magic-sets optimizer, and a code generator;
//   - a relational DBMS (internal/db over internal/sql, plan, exec,
//     catalog, index, storage) providing SQL with embedded cursors over
//     slotted-page heap storage with B+tree indexes — the stand-in for
//     the paper's commercial RDBMS;
//   - a Run Time Library (internal/rtlib) evaluating least fixed points
//     bottom-up by naive or semi-naive iteration over the SQL interface.
//
// Typical use:
//
//	tb := dkbms.NewMemory()
//	defer tb.Close()
//	tb.MustLoad(`
//	    parent(john, mary). parent(mary, ann).
//	    ancestor(X, Y) :- parent(X, Y).
//	    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//	`)
//	res, err := tb.Query("?- ancestor(john, W).", nil)
package dkbms

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"dkbms/internal/codegen"
	"dkbms/internal/core"
	"dkbms/internal/db"
	"dkbms/internal/dlog"
	"dkbms/internal/obs"
	"dkbms/internal/rel"
	"dkbms/internal/rtlib"
	"dkbms/internal/sched"
	"dkbms/internal/stored"
)

// ErrClosed is returned by every Testbed (and Prepared) operation
// attempted after Close.
var ErrClosed = errors.New("dkbms: testbed is closed")

// Testbed is one D/KBMS instance: a workspace D/KB, a DBMS, and a
// stored D/KB inside that DBMS.
//
// A Testbed is not safe for concurrent use; callers running queries
// from multiple goroutines must serialize access or wrap the testbed in
// a ConcurrentTestbed, which lets read-only queries run concurrently
// while serializing updates. (QueryOptions.Parallel is internal
// parallelism within one evaluation and does not change this.)
type Testbed struct {
	ws *core.Workspace
	db *db.DB
	st *stored.Manager
	// ruleGen counts rule-base changes; prepared queries recompile when
	// it moves past the generation they were compiled at.
	ruleGen uint64
	// dataGen counts extensional-data changes (fact inserts and
	// retractions). Cached query results are valid only while both
	// generations stand still; cached plans only depend on ruleGen.
	dataGen uint64
	// pool, when set (SetEvalPool), bounds parallel evaluation work on
	// a shared scheduler instead of per-evaluation goroutines.
	pool *sched.Pool
	// closed is set by Close; every later operation returns ErrClosed.
	closed bool
}

// SetEvalPool attaches a shared evaluation worker pool: queries run
// with QueryOptions.Parallel submit their differential SELECTs,
// partitioned dedup/termination work and wavefront nodes to it instead
// of spawning per-evaluation goroutines. The caller retains ownership
// of the pool (ConcurrentTestbed wires and closes its own). Nil
// detaches.
func (tb *Testbed) SetEvalPool(p *sched.Pool) { tb.pool = p }

// NewMemory opens a testbed over an in-memory database.
func NewMemory() *Testbed {
	d := db.OpenMemory()
	st, err := stored.Open(d, stored.Options{})
	if err != nil {
		// A fresh in-memory database cannot fail to bootstrap.
		panic(fmt.Sprintf("dkbms: bootstrap stored D/KB: %v", err))
	}
	return &Testbed{ws: core.NewWorkspace(), db: d, st: st}
}

// Open opens (creating if needed) a file-backed testbed.
func Open(path string) (*Testbed, error) {
	d, err := db.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := stored.Open(d, stored.Options{})
	if err != nil {
		d.Close()
		return nil, err
	}
	return &Testbed{ws: core.NewWorkspace(), db: d, st: st}, nil
}

// Close shuts the testbed down, flushing the database. A second Close,
// like any other operation on a closed testbed, returns ErrClosed.
func (tb *Testbed) Close() error {
	if tb.closed {
		return ErrClosed
	}
	tb.closed = true
	return tb.db.Close()
}

// Closed reports whether Close has been called.
func (tb *Testbed) Closed() bool { return tb.closed }

// DB exposes the underlying DBMS (for direct SQL, ad-hoc inspection and
// the benchmark harness).
func (tb *Testbed) DB() *db.DB { return tb.db }

// Stored exposes the stored-D/KB manager.
func (tb *Testbed) Stored() *stored.Manager { return tb.st }

// Workspace exposes the workspace D/KB.
func (tb *Testbed) Workspace() *core.Workspace { return tb.ws }

// Load parses a Horn-clause program and enters it into the workspace
// D/KB. Facts are materialized immediately into extensional relations;
// rules stay in the workspace until Update commits them to the stored
// D/KB. Queries are not allowed in Load input.
func (tb *Testbed) Load(src string) error {
	if tb.closed {
		return ErrClosed
	}
	prog, err := dlog.ParseProgram(src)
	if err != nil {
		return parseErr(err)
	}
	if len(prog.Queries) > 0 {
		return fmt.Errorf("%w: Load input contains a query; use Query", ErrSemantic)
	}
	for _, c := range prog.Clauses {
		if c.IsFact() {
			if err := tb.Assert(c.Head); err != nil {
				return err
			}
			continue
		}
		if err := tb.ws.AddClause(c); err != nil {
			return semanticErr(err)
		}
		tb.ruleGen++
	}
	return nil
}

// MustLoad is Load panicking on error, for examples and tests.
func (tb *Testbed) MustLoad(src string) {
	if err := tb.Load(src); err != nil {
		panic(err)
	}
}

// Assert adds one ground fact to the extensional database, creating the
// predicate's relation (and no index — see CreateFactIndex) on first
// use.
func (tb *Testbed) Assert(fact dlog.Atom) error {
	if !fact.IsGround() {
		return fmt.Errorf("%w: fact %s is not ground", ErrSemantic, fact.String())
	}
	tu := make(rel.Tuple, len(fact.Args))
	for i, t := range fact.Args {
		tu[i] = t.Val
	}
	return tb.AssertTuples(fact.Pred, []rel.Tuple{tu})
}

// AssertTuples bulk-loads facts for one predicate (the workload
// generators and the loader use this).
func (tb *Testbed) AssertTuples(pred string, tuples []rel.Tuple) error {
	if tb.closed {
		return ErrClosed
	}
	// Creating a new fact relation can change compiled programs (mixed
	// rules/facts normalization), so it bumps the rule generation;
	// appending to an existing relation does not.
	if !tb.db.HasTable(BaseTableName(pred)) {
		tb.ruleGen++
	}
	tb.dataGen++
	return tb.st.InsertFacts(pred, tuples)
}

// CreateFactIndex builds a B+tree index on the given columns (0-based)
// of a fact relation.
func (tb *Testbed) CreateFactIndex(pred string, cols ...int) error {
	if tb.closed {
		return ErrClosed
	}
	return tb.st.CreateFactIndex(pred, cols)
}

// Retract deletes stored facts matching the pattern atom: constant
// arguments must match exactly, variable arguments match anything
// (retract(parent(john, X)) removes every parent fact about john). It
// returns the number of facts removed; retracting from a predicate with
// no fact relation removes nothing. Rules are not retractable — they
// live in the workspace until committed, and the stored rule base is
// append-only as in the paper.
func (tb *Testbed) Retract(pattern dlog.Atom) (int, error) {
	if tb.closed {
		return 0, ErrClosed
	}
	table := BaseTableName(pattern.Pred)
	t := tb.db.Catalog().Table(table)
	if t == nil {
		return 0, nil
	}
	if t.Schema.Len() != pattern.Arity() {
		return 0, fmt.Errorf("%w: retract %s: predicate has arity %d, pattern has %d",
			ErrSemantic, pattern.String(), t.Schema.Len(), pattern.Arity())
	}
	_, where := retractFilter(pattern)
	stmt := "DELETE FROM " + table
	if where != "" {
		stmt += " WHERE " + where
	}
	before := t.Rows()
	if err := tb.db.Exec(stmt); err != nil {
		return 0, err
	}
	n := before - t.Rows()
	if n > 0 {
		tb.dataGen++
	}
	return n, nil
}

// RetractSrc is Retract for a source-syntax pattern ("parent(john, X)."
// — the trailing period optional).
func (tb *Testbed) RetractSrc(src string) (int, error) {
	pattern, err := parseRetract(src)
	if err != nil {
		return 0, err
	}
	return tb.Retract(pattern)
}

// parseRetract parses a source-syntax retract pattern (trailing period
// optional, rules rejected).
func parseRetract(src string) (dlog.Atom, error) {
	src = strings.TrimSpace(src)
	if !strings.HasSuffix(src, ".") {
		src += "."
	}
	c, err := dlog.ParseClause(src)
	if err != nil {
		return dlog.Atom{}, parseErr(err)
	}
	if len(c.Body) > 0 {
		return dlog.Atom{}, fmt.Errorf("%w: retract takes a fact pattern, not a rule", ErrSemantic)
	}
	return c.Head, nil
}

// retractFilter returns the extensional table and the SQL predicate
// (empty = match everything) selecting the facts a retract pattern
// removes. Retract and the concurrent commit path (which pre-counts
// matches to skip copy-on-write for no-op retractions) share it.
func retractFilter(pattern dlog.Atom) (table, where string) {
	table = BaseTableName(pattern.Pred)
	var parts []string
	for i, a := range pattern.Args {
		if a.IsVar() {
			continue
		}
		parts = append(parts, fmt.Sprintf("c%d = %s", i, a.Val.SQL()))
	}
	return table, strings.Join(parts, " AND ")
}

// QueryOptions tune query compilation and evaluation.
type QueryOptions struct {
	// Naive selects naive LFP evaluation (default is semi-naive).
	Naive bool
	// NoOptimize disables the magic-sets rewriting (default applies it
	// when the query carries constant bindings).
	NoOptimize bool
	// Adaptive consults the optimizer's selectivity heuristic to decide
	// whether to apply magic sets (the paper's proposed-but-not-
	// implemented dynamic strategy; see DESIGN.md extensions).
	Adaptive bool
	// Parallel evaluates the query on the shared scheduler pool (paper
	// conclusion 7a): independent PCG nodes run as a dependency
	// wavefront, each LFP iteration's differentials run concurrently,
	// and duplicate elimination/termination checking moves from SQL set
	// differences to hash-partitioned Go-side sets (conclusion 6b).
	Parallel bool
	// Trace records the query's execution as a span tree — compilation
	// phases, evaluation nodes, LFP iterations with delta cardinalities,
	// and the operator trees of the generated SQL — in
	// QueryResult.Trace. Off by default; the off state costs only nil
	// checks.
	Trace bool
	// QueryID tags the query for observability: it is stamped into the
	// result, the span trace and (on the server) the structured log and
	// slow-query ring, and travels over the wire so client and server
	// agree on the ID. 0 (the default) mints a fresh ID per query.
	QueryID uint64
	// Maintenance selects how a ConcurrentTestbed keeps this query's
	// memoized answer when commits touch tables it reads: re-derive
	// from scratch, maintain incrementally through the commit's fact
	// deltas, or decide per commit by delta size (MaintAuto, the
	// default). Ignored on the plain Testbed path, which has no cache.
	Maintenance MaintenancePolicy
}

// QueryResult is the answer to a D/KB query plus its cost breakdown.
type QueryResult struct {
	// Vars names the answer columns (query variables in order).
	Vars []string
	// Rows are the answer tuples.
	Rows []rel.Tuple
	// Compile and Evaluate are the paper's t_c and t_e breakdowns.
	Compile core.CompileStats
	Eval    rtlib.Stats
	// Optimized reports whether magic sets were applied.
	Optimized bool
	// Strategy is the LFP strategy used.
	Strategy rtlib.Strategy
	// Trace is the recorded span tree (nil unless QueryOptions.Trace was
	// set). Render it with Trace.Format().
	Trace *obs.Trace
	// Cache is the plan-cache outcome when the query went through a
	// ConcurrentTestbed: "result" (answered from the memoized result),
	// "maintained" (answered from a memoized result that view
	// maintenance kept current through commits), "plan" (compiled
	// program reused, re-evaluated) or "miss" (full compile). Empty on
	// the plain Testbed path, which has no cache.
	Cache string
	// Snapshot is the generation of the pinned snapshot the query ran
	// against when it went through a ConcurrentTestbed (0 on the plain
	// Testbed path, which reads live state).
	Snapshot uint64
	// QueryID is the ID this query ran under (caller-supplied via
	// QueryOptions.QueryID or minted). Format it with obs.FormatQueryID.
	QueryID uint64
}

// Iterations returns the total LFP iteration count across the
// evaluation-order nodes (0 for non-recursive queries and memoized
// cache hits, which did not evaluate).
func (r *QueryResult) Iterations() int64 {
	var n int64
	for _, ns := range r.Eval.Nodes {
		n += int64(ns.Iterations)
	}
	return n
}

// Query compiles and evaluates a Horn-clause query ("?- goal, goal.")
// against the workspace and stored D/KBs. opts may be nil for defaults
// (semi-naive, magic sets on).
func (tb *Testbed) Query(src string, opts *QueryOptions) (*QueryResult, error) {
	return tb.QueryContext(context.Background(), src, opts)
}

// QueryContext is Query under a context: cancellation (or deadline
// expiry) is checked between compilation and evaluation and at every
// LFP iteration boundary, aborting the query with an error wrapping
// ctx.Err(). Long recursive evaluations therefore stop within one
// iteration of the cancel.
func (tb *Testbed) QueryContext(ctx context.Context, src string, opts *QueryOptions) (*QueryResult, error) {
	q, err := dlog.ParseQuery(src)
	if err != nil {
		return nil, parseErr(err)
	}
	return tb.RunQueryContext(ctx, q, opts)
}

// RunQuery is Query for a pre-parsed query.
func (tb *Testbed) RunQuery(q dlog.Query, opts *QueryOptions) (*QueryResult, error) {
	return tb.RunQueryContext(context.Background(), q, opts)
}

// RunQueryContext is QueryContext for a pre-parsed query.
func (tb *Testbed) RunQueryContext(ctx context.Context, q dlog.Query, opts *QueryOptions) (*QueryResult, error) {
	if opts == nil {
		opts = &QueryOptions{}
	}
	qid := opts.QueryID
	if qid == 0 {
		qid = obs.NewQueryID()
	}
	var tr *obs.Trace
	if opts.Trace {
		tr = obs.NewTrace("query")
		tr.Root().SetInt("query_id", int64(qid))
	}
	compiled, err := tb.compile(q, opts, tr)
	if err != nil {
		return nil, err
	}
	res, err := tb.evaluate(ctx, compiled, opts, tr)
	if err != nil {
		return nil, err
	}
	res.QueryID = qid
	return res, nil
}

// Compile runs only the Knowledge Manager pipeline, returning the
// evaluation program (used by benchmarks that measure t_c and t_e
// separately, and by the precompiled-query cache).
func (tb *Testbed) Compile(q dlog.Query, opts *QueryOptions) (*core.Compiled, error) {
	return tb.compile(q, opts, nil)
}

func (tb *Testbed) compile(q dlog.Query, opts *QueryOptions, tr *obs.Trace) (*core.Compiled, error) {
	return tb.compileWith(tb.ws, tb.db, tb.st, q, opts, tr)
}

// compileWith is compile against an explicit workspace, database and
// rule source — the ConcurrentTestbed passes a pinned snapshot's frozen
// workspace and resolver-bound views here, so the whole Knowledge
// Manager pipeline (rule extraction, dictionary reads, schema lookups)
// sees one consistent engine state.
func (tb *Testbed) compileWith(ws *core.Workspace, d *db.DB, st *stored.Manager, q dlog.Query, opts *QueryOptions, tr *obs.Trace) (*core.Compiled, error) {
	if tb.closed {
		return nil, ErrClosed
	}
	if opts == nil {
		opts = &QueryOptions{}
	}
	optimize := !opts.NoOptimize
	if opts.Adaptive {
		optimize = tb.adaptiveOptimize(q)
	}
	cp := &core.Compiler{WS: ws, DB: d, Stored: st}
	compiled, err := cp.Compile(q, core.CompileOptions{Optimize: optimize, Trace: tr})
	if err != nil {
		return nil, semanticErr(err)
	}
	return compiled, nil
}

// Evaluate runs a compiled program. When opts.Trace is set the result
// carries an evaluation-only trace (compilation happened elsewhere —
// e.g. in Prepare).
func (tb *Testbed) Evaluate(compiled *core.Compiled, opts *QueryOptions) (*QueryResult, error) {
	return tb.EvaluateContext(context.Background(), compiled, opts)
}

// EvaluateContext is Evaluate under a context (see QueryContext).
func (tb *Testbed) EvaluateContext(ctx context.Context, compiled *core.Compiled, opts *QueryOptions) (*QueryResult, error) {
	var tr *obs.Trace
	if opts != nil && opts.Trace {
		tr = obs.NewTrace("query")
	}
	return tb.evaluate(ctx, compiled, opts, tr)
}

func (tb *Testbed) evaluate(ctx context.Context, compiled *core.Compiled, opts *QueryOptions, tr *obs.Trace) (*QueryResult, error) {
	return tb.evaluateWith(ctx, tb.db, compiled, opts, tr)
}

// evaluateWith is evaluate against an explicit database — normally a
// snapshot-bound view, so the run-time library reads frozen base-table
// versions while its session-private temp tables still land in the
// live catalog.
func (tb *Testbed) evaluateWith(ctx context.Context, d *db.DB, compiled *core.Compiled, opts *QueryOptions, tr *obs.Trace) (*QueryResult, error) {
	res, _, err := tb.evaluateKeep(ctx, d, compiled, opts, tr, false)
	return res, err
}

// evaluateKeep is evaluateWith with control over temp-table retention:
// with keep set, the rtlib result retains the evaluation's derived
// relations (Result.Detach hands them to the materialized-view layer)
// and is returned alongside the query result.
func (tb *Testbed) evaluateKeep(ctx context.Context, d *db.DB, compiled *core.Compiled, opts *QueryOptions, tr *obs.Trace, keep bool) (*QueryResult, *rtlib.Result, error) {
	if tb.closed {
		return nil, nil, ErrClosed
	}
	if opts == nil {
		opts = &QueryOptions{}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("dkbms: query canceled: %w", err)
		}
	}
	strategy := rtlib.SemiNaive
	if opts.Naive {
		strategy = rtlib.Naive
	}
	res, err := rtlib.Evaluate(d, compiled.Program, rtlib.Options{
		Strategy:   strategy,
		KeepTables: keep,
		Parallel:   opts.Parallel,
		Pool:       tb.pool,
		Trace:      tr,
		Ctx:        ctx,
	})
	if err != nil {
		return nil, nil, err
	}
	tr.Finish()
	return &QueryResult{
		Vars:      compiled.Vars,
		Rows:      res.Rows,
		Compile:   compiled.Stats,
		Eval:      res.Stats,
		Optimized: compiled.Optimized,
		Strategy:  strategy,
		Trace:     tr,
		QueryID:   opts.QueryID,
	}, res, nil
}

// Update commits the workspace rules into the stored D/KB (paper §4.3),
// incrementally maintaining the compiled rule storage structures, and
// clears the workspace. It returns the update-time breakdown.
func (tb *Testbed) Update() (stored.UpdateStats, error) {
	if tb.closed {
		return stored.UpdateStats{}, ErrClosed
	}
	st, err := tb.st.Update(tb.ws.Rules())
	if err != nil {
		return st, err
	}
	tb.ws.Clear()
	tb.ruleGen++
	return st, nil
}

// adaptiveOptimize implements the paper's proposed dynamic optimization
// switch: apply magic sets only when the query looks selective — i.e.
// it carries at least one constant binding. (A full implementation
// would estimate D_rel/D_tot; the testbed uses the binding heuristic
// and exposes both manual modes for the crossover experiments.)
func (tb *Testbed) adaptiveOptimize(q dlog.Query) bool {
	for _, g := range q.Goals {
		for _, t := range g.Args {
			if !t.IsVar() {
				return true
			}
		}
	}
	return false
}

// Format renders a query result as an aligned text table (the shell and
// examples use it).
func (r *QueryResult) Format() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, "\t"))
	b.WriteByte('\n')
	for _, tu := range r.Rows {
		for i, v := range tu {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BaseTableName exposes the extensional naming convention (cmd tools
// create fact relations directly through SQL for bulk loads).
func BaseTableName(pred string) string { return codegen.BaseTable(pred) }
