package dkbms

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dkbms/internal/dlog"
	"dkbms/internal/rel"
)

// refEval is a reference Datalog interpreter: naive bottom-up over Go
// maps, structurally unrelated to the engine under test. It computes
// the full model of the program over the given facts.
func refEval(rules []dlog.Clause, facts map[string][]rel.Tuple) map[string]map[string]rel.Tuple {
	model := make(map[string]map[string]rel.Tuple)
	add := func(pred string, tu rel.Tuple) bool {
		m := model[pred]
		if m == nil {
			m = make(map[string]rel.Tuple)
			model[pred] = m
		}
		k := tu.Key()
		if _, ok := m[k]; ok {
			return false
		}
		m[k] = tu
		return true
	}
	for pred, ts := range facts {
		for _, tu := range ts {
			add(pred, tu)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range rules {
			for _, binding := range matchBody(c.Body, model, map[string]rel.Value{}) {
				head := make(rel.Tuple, len(c.Head.Args))
				ok := true
				for i, t := range c.Head.Args {
					if t.IsVar() {
						v, bound := binding[t.Var]
						if !bound {
							ok = false
							break
						}
						head[i] = v
					} else {
						head[i] = t.Val
					}
				}
				if ok && add(c.Head.Pred, head) {
					changed = true
				}
			}
		}
	}
	return model
}

// matchBody enumerates variable bindings satisfying the body atoms
// left to right.
func matchBody(body []dlog.Atom, model map[string]map[string]rel.Tuple, binding map[string]rel.Value) []map[string]rel.Value {
	if len(body) == 0 {
		cp := make(map[string]rel.Value, len(binding))
		for k, v := range binding {
			cp[k] = v
		}
		return []map[string]rel.Value{cp}
	}
	var out []map[string]rel.Value
	a := body[0]
	for _, tu := range model[a.Pred] {
		ok := true
		newVars := []string{}
		for i, t := range a.Args {
			if t.IsVar() {
				if v, bound := binding[t.Var]; bound {
					if !rel.Equal(v, tu[i]) {
						ok = false
						break
					}
				} else {
					binding[t.Var] = tu[i]
					newVars = append(newVars, t.Var)
				}
			} else if !rel.Equal(t.Val, tu[i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, matchBody(body[1:], model, binding)...)
		}
		for _, v := range newVars {
			delete(binding, v)
		}
	}
	return out
}

// refAnswer evaluates a query against the reference model.
func refAnswer(q dlog.Query, rules []dlog.Clause, facts map[string][]rel.Tuple) []string {
	all := append([]dlog.Clause{q.AsClause()}, rules...)
	model := refEval(all, facts)
	var out []string
	for _, tu := range model[dlog.QueryPred] {
		out = append(out, tu.String())
	}
	sort.Strings(out)
	return out
}

// genProgram builds a random Datalog program over nBase base and nDeriv
// derived binary predicates, with all-string columns (avoiding type
// conflicts by construction) and range-restricted rules.
func genProgram(r *rand.Rand, nBase, nDeriv int) ([]dlog.Clause, map[string][]rel.Tuple) {
	basePred := func(i int) string { return fmt.Sprintf("e%d", i) }
	derivPred := func(i int) string { return fmt.Sprintf("p%d", i) }
	consts := []string{"a", "b", "c", "d", "g", "h"}

	facts := make(map[string][]rel.Tuple)
	for i := 0; i < nBase; i++ {
		n := 3 + r.Intn(6)
		seen := map[string]bool{}
		for j := 0; j < n; j++ {
			tu := rel.Tuple{
				rel.NewString(consts[r.Intn(len(consts))]),
				rel.NewString(consts[r.Intn(len(consts))]),
			}
			if !seen[tu.Key()] {
				seen[tu.Key()] = true
				facts[basePred(i)] = append(facts[basePred(i)], tu)
			}
		}
	}

	vars := []string{"X", "Y", "Z", "W"}
	var rules []dlog.Clause
	for i := 0; i < nDeriv; i++ {
		nRules := 1 + r.Intn(2)
		// First rule is non-recursive (references only base preds and
		// earlier derived preds) so every clique has an exit and types
		// are always inferable.
		for ri := 0; ri <= nRules; ri++ {
			nAtoms := 1 + r.Intn(2)
			var body []dlog.Atom
			for ai := 0; ai < nAtoms; ai++ {
				var pred string
				if ri == 0 {
					if i > 0 && r.Intn(3) == 0 {
						pred = derivPred(r.Intn(i))
					} else {
						pred = basePred(r.Intn(nBase))
					}
				} else {
					// Later rules may recurse on any derived pred.
					if r.Intn(2) == 0 {
						pred = derivPred(r.Intn(i + 1))
					} else {
						pred = basePred(r.Intn(nBase))
					}
				}
				args := make([]dlog.Term, 2)
				for k := range args {
					if r.Intn(5) == 0 {
						args[k] = dlog.CStr(consts[r.Intn(len(consts))])
					} else {
						args[k] = dlog.V(vars[r.Intn(len(vars))])
					}
				}
				body = append(body, dlog.Atom{Pred: pred, Args: args})
			}
			// Head vars drawn from body vars (range restriction).
			var bodyVars []string
			seen := map[string]bool{}
			for _, a := range body {
				for _, t := range a.Args {
					if t.IsVar() && !seen[t.Var] {
						seen[t.Var] = true
						bodyVars = append(bodyVars, t.Var)
					}
				}
			}
			head := dlog.Atom{Pred: derivPred(i), Args: make([]dlog.Term, 2)}
			for k := range head.Args {
				if len(bodyVars) == 0 || r.Intn(6) == 0 {
					head.Args[k] = dlog.CStr(consts[r.Intn(len(consts))])
				} else {
					head.Args[k] = dlog.V(bodyVars[r.Intn(len(bodyVars))])
				}
			}
			rules = append(rules, dlog.Clause{Head: head, Body: body})
		}
	}
	return rules, facts
}

// TestRandomProgramsAgainstReference cross-checks all four engine modes
// against the reference interpreter on random programs and queries.
func TestRandomProgramsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rules, facts := genProgram(r, 2, 1+r.Intn(3))
		// Query: random derived pred, first arg bound to a constant in
		// half the trials.
		target := rules[r.Intn(len(rules))].Head.Pred
		var q dlog.Query
		if r.Intn(2) == 0 {
			q = dlog.Query{Goals: []dlog.Atom{{
				Pred: target,
				Args: []dlog.Term{dlog.CStr("a"), dlog.V("OUT")},
			}}}
		} else {
			q = dlog.Query{Goals: []dlog.Atom{{
				Pred: target,
				Args: []dlog.Term{dlog.V("O1"), dlog.V("O2")},
			}}}
		}

		want := refAnswer(q, rules, facts)

		tb := NewMemory()
		for pred, ts := range facts {
			if err := tb.AssertTuples(pred, ts); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range rules {
			if err := tb.Workspace().AddClause(c); err != nil {
				t.Fatal(err)
			}
		}
		for _, mode := range allModes {
			opts := mode.opts
			res, err := tb.RunQuery(q, &opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v\nprogram:\n%s\nquery: %s",
					trial, mode.name, err, programText(rules), q.String())
			}
			got := rowSet(res.Rows)
			if strings.Join(got, "|") != strings.Join(want, "|") {
				t.Fatalf("trial %d %s: engine disagrees with reference\nprogram:\n%s\nquery: %s\n got: %v\nwant: %v",
					trial, mode.name, programText(rules), q.String(), got, want)
			}
		}
		tb.Close()
	}
}

func programText(rules []dlog.Clause) string {
	var b strings.Builder
	for _, c := range rules {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRandomChainUpdatesAgainstReference drives random incremental
// stored-D/KB updates and re-checks query answers after each commit.
func TestRandomChainUpdatesAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tb := NewMemory()
	defer tb.Close()
	facts := map[string][]rel.Tuple{
		"e0": {
			{rel.NewString("a"), rel.NewString("b")},
			{rel.NewString("b"), rel.NewString("c")},
			{rel.NewString("c"), rel.NewString("d")},
			{rel.NewString("a"), rel.NewString("d")},
		},
	}
	for pred, ts := range facts {
		if err := tb.AssertTuples(pred, ts); err != nil {
			t.Fatal(err)
		}
	}
	var committed []dlog.Clause
	addRule := func(src string) {
		c := dlog.MustParseClause(src)
		committed = append(committed, c)
		if err := tb.Workspace().AddClause(c); err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Update(); err != nil {
			t.Fatal(err)
		}
	}
	addRule("p0(X, Y) :- e0(X, Y).")
	addRule("p0(X, Y) :- e0(X, Z), p0(Z, Y).")
	for i := 1; i <= 5; i++ {
		// Build on a random earlier predicate.
		prev := fmt.Sprintf("p%d", r.Intn(i))
		addRule(fmt.Sprintf("p%d(X, Y) :- %s(Y, X).", i, prev))

		q := dlog.Query{Goals: []dlog.Atom{{
			Pred: fmt.Sprintf("p%d", i),
			Args: []dlog.Term{dlog.V("A"), dlog.V("B")},
		}}}
		want := refAnswer(q, committed, facts)
		res, err := tb.RunQuery(q, nil)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if strings.Join(rowSet(res.Rows), "|") != strings.Join(want, "|") {
			t.Fatalf("step %d: engine %v, reference %v", i, rowSet(res.Rows), want)
		}
	}
}
