// Genealogy: a persistent knowledge base built up across sessions. The
// example runs two "sessions" against the same database file: the first
// loads facts and commits rules to the stored D/KB; the second reopens
// the file cold and queries — the Knowledge Manager extracts the rules
// it needs from the stored D/KB through the compiled rule storage.
// A final update extends the rule base incrementally (the paper's §4.3
// incremental transitive-closure maintenance).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dkbms"
)

func main() {
	dir, err := os.MkdirTemp("", "dkbms-genealogy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "genealogy.db")

	// --- Session 1: build the knowledge base.
	tb, err := dkbms.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tb.MustLoad(`
% three generations
parent(william, george).   parent(kate, george).
parent(william, charlotte).
parent(charles, william).  parent(diana, william).
parent(charles, harry).    parent(diana, harry).
parent(elizabeth, charles).
female(kate). female(charlotte). female(diana). female(elizabeth).
male(william). male(george). male(charles). male(harry).

ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
grandparent(X, Y) :- parent(X, Z), parent(Z, Y).
granddaughter(X, Y) :- grandparent(X, Y), female(Y).
`)
	st, err := tb.Update()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: committed %d rules; stored D/KB has %d rules, %d reachability edges\n",
		st.NewRules, tb.Stored().RuleCount(), tb.Stored().ReachableEdges())
	if err := tb.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Session 2: reopen cold and query.
	tb2, err := dkbms.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer tb2.Close()

	res, err := tb2.Query("?- ancestor(elizabeth, W).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession 2: elizabeth's descendants (R_r=%d rules extracted from the stored D/KB):\n",
		res.Compile.RelevantRules)
	fmt.Print(res.Format())

	gd, err := tb2.Query("?- granddaughter(charles, W).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("charles' granddaughters:")
	fmt.Print(gd.Format())

	// --- Incremental rule-base extension: cousins, defined on top of
	// the stored grandparent rules.
	tb2.MustLoad(`
cousin(X, Y) :- grandparent(G, X), grandparent(G, Y).
`)
	st2, err := tb2.Update()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental update: +%d rule, closure now %d edges (update took %v)\n",
		st2.NewRules, tb2.Stored().ReachableEdges(), st2.Total)

	cz, err := tb2.Query("?- cousin(george, W).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("george's (grand-)cousins, himself and siblings included:")
	fmt.Print(cz.Format())
}
