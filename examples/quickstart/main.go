// Quickstart: load a tiny data/knowledge base, pose a recursive query,
// and look at what the Knowledge Manager did under the hood.
package main

import (
	"fmt"
	"log"

	"dkbms"
)

func main() {
	tb := dkbms.NewMemory()
	defer tb.Close()

	// Facts go straight into the extensional database; rules wait in
	// the workspace D/KB until committed with Update.
	tb.MustLoad(`
% facts
parent(john, mary).   parent(john, bob).
parent(mary, ann).    parent(mary, tom).
parent(bob, lea).     parent(lea, zoe).

% rules
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
`)

	res, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("descendants of john:")
	fmt.Print(res.Format())

	fmt.Printf("\ncompiled in %v, evaluated in %v", res.Compile.Total, res.Eval.Elapsed)
	if res.Optimized {
		fmt.Print(" (magic-sets rewriting applied)")
	}
	fmt.Println()

	// The same query, unoptimized and with naive instead of semi-naive
	// LFP evaluation — the two knobs the paper's experiments turn.
	slow, err := tb.Query("?- ancestor(john, W).",
		&dkbms.QueryOptions{Naive: true, NoOptimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive + no optimization: same %d rows in %v\n",
		len(slow.Rows), slow.Eval.Elapsed)

	// Commit the workspace rules to the stored D/KB: they persist (for
	// file-backed testbeds) and future queries extract them through the
	// compiled rule storage structures.
	st, err := tb.Update()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d rules to the stored D/KB (%d reachability edges)\n",
		st.NewRules, tb.Stored().ReachableEdges())

	again, err := tb.Query("?- ancestor(mary, W).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("descendants of mary (rules now pulled from the stored D/KB):")
	fmt.Print(again.Format())
}
