// Bill-of-materials: the parts-explosion workload that motivated much
// of the 1980s recursive-query work. A `component(Asm, Part)` relation
// records direct composition; the D/KB derives the full transitive
// explosion, the where-used inverse, and shared subparts — and shows
// the magic-sets optimizer restricting evaluation to one assembly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dkbms"
	"dkbms/internal/rel"
)

func main() {
	tb := dkbms.NewMemory()
	defer tb.Close()

	// A synthetic product hierarchy: 3 top-level products, each a tree
	// of subassemblies bottoming out in shared basic parts.
	rng := rand.New(rand.NewSource(7))
	var edges []rel.Tuple
	addTree := func(product string, depth, fanout int) {
		var walk func(name string, d int)
		id := 0
		walk = func(name string, d int) {
			if d == 0 {
				// Leaves attach to a shared pool of basic parts.
				edges = append(edges, rel.Tuple{
					rel.NewString(name),
					rel.NewString(fmt.Sprintf("basic%d", rng.Intn(20))),
				})
				return
			}
			for i := 0; i < fanout; i++ {
				child := fmt.Sprintf("%s_s%d", product, id)
				id++
				edges = append(edges, rel.Tuple{rel.NewString(name), rel.NewString(child)})
				walk(child, d-1)
			}
		}
		walk(product, depth)
	}
	addTree("engine", 4, 3)
	addTree("chassis", 3, 4)
	addTree("cabin", 3, 3)

	if err := tb.AssertTuples("component", edges); err != nil {
		log.Fatal(err)
	}
	if err := tb.CreateFactIndex("component", 0); err != nil {
		log.Fatal(err)
	}

	tb.MustLoad(`
% transitive parts explosion
contains(A, P) :- component(A, P).
contains(A, P) :- component(A, S), contains(S, P).

% where-used: every assembly a part appears in
whereused(P, A) :- contains(A, P).

% two products share a part
shared(A, B, P) :- contains(A, P), contains(B, P).
`)

	fmt.Printf("bill of materials: %d direct composition edges\n\n", len(edges))

	// Parts explosion for one product — the bound query the magic-sets
	// rewriting exists for: only engine's subtree is evaluated.
	explosion, err := tb.Query("?- contains(engine, P).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine explodes into %d parts (optimized=%v, eval %v)\n",
		len(explosion.Rows), explosion.Optimized, explosion.Eval.Elapsed)

	unopt, err := tb.Query("?- contains(engine, P).", &dkbms.QueryOptions{NoOptimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  without magic sets: same %d parts, eval %v (whole hierarchy closed)\n",
		len(unopt.Rows), unopt.Eval.Elapsed)

	// Where is basic7 used?
	wu, err := tb.Query("?- whereused(basic7, A).", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbasic7 is used in %d assemblies, e.g.:\n", len(wu.Rows))
	for i, row := range wu.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", row[0])
	}

	// Do engine and chassis share any basic parts?
	sh, err := tb.Query("?- shared(engine, chassis, P).", nil)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range sh.Rows {
		seen[row[0].Str] = true
	}
	fmt.Printf("\nengine and chassis share %d distinct parts\n", len(seen))
}
