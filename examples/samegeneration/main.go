// Same-generation: the canonical non-linear recursive query of the
// magic-sets literature. Two people are same-generation cousins if they
// are the same person at the top of the hierarchy, or their parents are
// same-generation. This example builds a deep genealogy and compares
// all four evaluation configurations (naive/semi-naive × magic/plain)
// on the same bound query — the paper's Tests 5 and 7 in miniature.
package main

import (
	"fmt"
	"log"

	"dkbms"
	"dkbms/internal/rel"
	"dkbms/internal/workload"
)

func main() {
	tb := dkbms.NewMemory()
	defer tb.Close()

	// up(child, parent) from a full binary tree of depth 9: node t1 is
	// the ancestor everybody descends from.
	tree := workload.FullBinaryTree(9)
	up := make([]rel.Tuple, len(tree))
	for i, e := range tree {
		up[i] = rel.Tuple{e[1], e[0]} // child -> parent
	}
	if err := tb.AssertTuples("up", up); err != nil {
		log.Fatal(err)
	}
	if err := tb.CreateFactIndex("up", 0); err != nil {
		log.Fatal(err)
	}
	// flat: the top is same-generation with itself.
	if err := tb.AssertTuples("flat", []rel.Tuple{
		{rel.NewString(workload.TreeNode(1)), rel.NewString(workload.TreeNode(1))},
	}); err != nil {
		log.Fatal(err)
	}

	tb.MustLoad(`
down(X, Y) :- up(Y, X).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)

	// Everyone in t200's generation.
	subject := workload.TreeNode(200)
	query := fmt.Sprintf("?- sg(%s, W).", subject)

	configs := []struct {
		name string
		opts dkbms.QueryOptions
	}{
		{"semi-naive + magic", dkbms.QueryOptions{}},
		{"semi-naive, plain ", dkbms.QueryOptions{NoOptimize: true}},
		{"naive + magic     ", dkbms.QueryOptions{Naive: true}},
		{"naive, plain      ", dkbms.QueryOptions{Naive: true, NoOptimize: true}},
	}
	fmt.Printf("same-generation cousins of %s over %d up-edges:\n\n", subject, len(up))
	var nRows int
	for _, c := range configs {
		opts := c.opts
		res, err := tb.Query(query, &opts)
		if err != nil {
			log.Fatal(err)
		}
		if nRows == 0 {
			nRows = len(res.Rows)
		} else if nRows != len(res.Rows) {
			log.Fatalf("configuration %s disagrees: %d vs %d rows", c.name, len(res.Rows), nRows)
		}
		iters := 0
		for _, ns := range res.Eval.Nodes {
			if ns.Recursive && ns.Iterations > iters {
				iters = ns.Iterations
			}
		}
		fmt.Printf("  %s  %4d rows  eval %-12v  (%2d LFP iterations)\n",
			c.name, len(res.Rows), res.Eval.Elapsed, iters)
	}
	fmt.Printf("\nall four configurations agree on the %d-row answer\n", nRows)
}
