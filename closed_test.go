package dkbms_test

import (
	"errors"
	"testing"

	"dkbms"
)

// TestClosedTestbed is the regression test for the Close contract:
// every operation on a closed testbed — including running a Prepared
// built before the close — fails with ErrClosed rather than reaching
// the flushed database.
func TestClosedTestbed(t *testing.T) {
	tb := dkbms.NewMemory()
	tb.MustLoad(`
		parent(john, mary). parent(mary, ann).
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
	`)
	prep, err := tb.Prepare("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if !tb.Closed() {
		t.Fatal("Closed() = false after Close")
	}

	checks := []struct {
		name string
		err  error
	}{
		{"Close", tb.Close()},
		{"Load", tb.Load("parent(ann, sue).")},
		{"Query", func() error { _, err := tb.Query("?- ancestor(john, W).", nil); return err }()},
		{"Prepare", func() error { _, err := tb.Prepare("?- ancestor(john, W).", nil); return err }()},
		{"Prepared.Run", func() error { _, err := prep.Run(); return err }()},
		{"Update", func() error { _, err := tb.Update(); return err }()},
		{"Retract", func() error { _, err := tb.RetractSrc("parent(john, X)"); return err }()},
		{"CreateFactIndex", tb.CreateFactIndex("parent", 0)},
	}
	for _, c := range checks {
		if !errors.Is(c.err, dkbms.ErrClosed) {
			t.Errorf("%s after Close: err = %v, want ErrClosed", c.name, c.err)
		}
	}
}

func TestRetract(t *testing.T) {
	tb := dkbms.NewMemory()
	defer tb.Close()
	tb.MustLoad(`
		parent(john, mary). parent(john, bob). parent(mary, ann).
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
	`)

	n, err := tb.RetractSrc("parent(john, X).")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("retracted %d facts, want 2", n)
	}
	res, err := tb.Query("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("ancestor(john, W) after retract: %d rows, want 0", len(res.Rows))
	}
	res, err = tb.Query("?- ancestor(mary, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ancestor(mary, W) = %d rows, want 1", len(res.Rows))
	}

	// Retracting an unknown predicate or a non-matching pattern is a
	// no-op, not an error.
	if n, err := tb.RetractSrc("nosuch(a)."); err != nil || n != 0 {
		t.Fatalf("retract unknown pred: n=%d err=%v", n, err)
	}
	if n, err := tb.RetractSrc("parent(zoe, X)."); err != nil || n != 0 {
		t.Fatalf("retract non-matching: n=%d err=%v", n, err)
	}
	// A rule is not a fact pattern.
	if _, err := tb.RetractSrc("p(X) :- q(X)."); err == nil {
		t.Fatal("retracting a rule should fail")
	}
}
