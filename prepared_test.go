package dkbms

import (
	"testing"
)

func TestPreparedQueryReuse(t *testing.T) {
	tb := familyTB(t)
	p, err := tb.Prepare("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recompiles != 1 {
		t.Fatalf("Recompiles = %d after Prepare", p.Recompiles)
	}
	for i := 0; i < 3; i++ {
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)")
	}
	if p.Recompiles != 1 {
		t.Fatalf("Recompiles = %d after repeated Run", p.Recompiles)
	}
	if p.Stale() {
		t.Fatal("fresh prepared query reports stale")
	}
}

func TestPreparedSeesNewFacts(t *testing.T) {
	// Appending facts to an existing relation must NOT invalidate the
	// program but MUST be visible to the next Run.
	tb := familyTB(t)
	p, err := tb.Prepare("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.MustLoad("parent(lea, zoe).")
	if p.Stale() {
		t.Fatal("fact append invalidated the prepared query")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)", "(zoe)")
	if p.Recompiles != 1 {
		t.Fatalf("Recompiles = %d", p.Recompiles)
	}
}

func TestPreparedInvalidatedByRuleChange(t *testing.T) {
	tb := familyTB(t)
	p, err := tb.Prepare("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A new rule extends ancestor through marriage.
	tb.MustLoad(`
married(john, jane).
married(jane, john).
ancestor(X, Y) :- married(X, Z), parent(Z, Y).
`)
	if !p.Stale() {
		t.Fatal("rule addition did not invalidate")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.Recompiles != 2 {
		t.Fatalf("Recompiles = %d", p.Recompiles)
	}
	// john's descendants unchanged (jane has no separate children) but
	// the program recompiled against 3 rules.
	if res.Compile.RelevantRules != 3 {
		t.Fatalf("R_r = %d", res.Compile.RelevantRules)
	}
}

func TestPreparedInvalidatedByUpdate(t *testing.T) {
	tb := familyTB(t)
	p, err := tb.Prepare("?- ancestor(john, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Update(); err != nil {
		t.Fatal(err)
	}
	if !p.Stale() {
		t.Fatal("Update did not invalidate")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, "(mary)", "(bob)", "(ann)", "(tom)", "(lea)")
}

func TestPreparedInvalidatedByNewFactRelation(t *testing.T) {
	// Creating a fact relation for a predicate that also has rules
	// changes the compiled program (mixed normalization) — must
	// invalidate.
	tb := NewMemory()
	defer tb.Close()
	tb.MustLoad(`
friend(ann, carl).
knows(X, Y) :- friend(X, Y).
`)
	p, err := tb.Prepare("?- knows(ann, W).", nil)
	if err != nil {
		t.Fatal(err)
	}
	sameRowsP(t, p, "(carl)")
	tb.MustLoad("knows(ann, bob).") // first fact for knows: new relation
	if !p.Stale() {
		t.Fatal("new fact relation did not invalidate")
	}
	sameRowsP(t, p, "(carl)", "(bob)")
}

func sameRowsP(t *testing.T, p *Prepared, want ...string) {
	t.Helper()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, want...)
}

func TestPreparedParseError(t *testing.T) {
	tb := familyTB(t)
	if _, err := tb.Prepare("?- nonsense(", nil); err == nil {
		t.Fatal("bad query accepted")
	}
}
