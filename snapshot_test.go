package dkbms

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// snapshotChain builds the EXPERIMENTS.md Test 6 shape at small scale:
// a parent chain c0..c15 plus the recursive ancestor rules.
func snapshotChain(t *testing.T) *ConcurrentTestbed {
	t.Helper()
	c := NewConcurrent(NewMemory())
	t.Cleanup(func() { c.Close() })
	var src strings.Builder
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&src, "parent(c%d, c%d).\n", i, i+1)
	}
	src.WriteString("ancestor(X, Y) :- parent(X, Y).\n")
	src.WriteString("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n")
	if err := c.Load(src.String()); err != nil {
		t.Fatal(err)
	}
	return c
}

// rowsKey canonicalizes an answer for exact-set comparison.
func rowsKey(res *QueryResult) string {
	keys := make([]string, len(res.Rows))
	for i, tu := range res.Rows {
		parts := make([]string, len(tu))
		for j, v := range tu {
			parts[j] = v.String()
		}
		keys[i] = strings.Join(parts, ",")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestSnapshotIsolationUnderUpdateStorm: eight readers evaluate the
// ancestor closure while a writer continuously toggles the chain's
// last edge with LOAD and RETRACT. Under snapshot isolation every
// answer must equal, exactly, the closure before the toggle or the
// closure after it — never a torn in-between state — and the writer's
// versions must all be reclaimed once the storm drains.
func TestSnapshotIsolationUnderUpdateStorm(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."

	// The two committed states the storm oscillates between.
	resA, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	closureA := rowsKey(resA) // c1..c15: 15 rows
	if len(resA.Rows) != 15 {
		t.Fatalf("baseline closure has %d rows, want 15", len(resA.Rows))
	}
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	resB, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	closureB := rowsKey(resB) // plus c16: 16 rows
	if len(resB.Rows) != 16 {
		t.Fatalf("extended closure has %d rows, want 16", len(resB.Rows))
	}
	if _, err := c.RetractSrc("parent(c15, c16)"); err != nil {
		t.Fatal(err)
	}

	readers := 8
	perReader := 30
	writes := 60
	if testing.Short() {
		perReader, writes = 10, 20
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				res, err := c.Query(q, nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if key := rowsKey(res); key != closureA && key != closureB {
					t.Errorf("torn read at snapshot %d: %d rows, neither pre- nor post-update closure",
						res.Snapshot, len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := c.Load("parent(c15, c16)."); err != nil {
				t.Errorf("writer load: %v", err)
				return
			}
			if n, err := c.RetractSrc("parent(c15, c16)"); err != nil || n != 1 {
				t.Errorf("writer retract: %d, %v", n, err)
				return
			}
		}
	}()
	wg.Wait()

	// The storm over and all readers drained, reclamation must have
	// caught up: one live version per published table, no backlog.
	st := c.SnapshotStats()
	if st.ActiveReaders != 0 {
		t.Fatalf("%d active readers after drain", st.ActiveReaders)
	}
	if st.ReclaimBacklog != 0 || st.RetiredSnapshots != 0 {
		t.Fatalf("reclamation leaked: backlog %d, retired %d", st.ReclaimBacklog, st.RetiredSnapshots)
	}
	if st.ReclaimErrors != 0 {
		t.Fatalf("%d reclaim errors", st.ReclaimErrors)
	}
	if st.Commits == 0 || st.CopiedTables == 0 {
		t.Fatalf("storm committed nothing: %+v", st)
	}
	// Final state is closure A (every toggle pair ends on retract).
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(res) != closureA {
		t.Fatalf("final state diverged: %d rows", len(res.Rows))
	}
}

// TestSnapshotReadersDoNotBlockWriters is the convoy regression test:
// a reader holding a pinned snapshot (simulated by pinning through the
// stats-visible acquire path of a long query) must not stop a writer
// from committing, and the writer must not invalidate the reader's
// answers for untouched tables.
func TestSnapshotReadersDoNotBlockWriters(t *testing.T) {
	c := snapshotChain(t)
	// An unrelated relation created up front: appending to an existing
	// relation later moves only that table's version. (Creating a new
	// relation would bump the rule generation — mixed rules/facts
	// normalization can change compiled programs — and recompile.)
	if err := c.Load("likes(alice, bob)."); err != nil {
		t.Fatal(err)
	}
	const q = "?- ancestor(c0, X)."
	if _, err := c.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	// A write to the unrelated relation must keep the memoized ancestor
	// answer valid (per-table invalidation, not a wholesale nuke).
	if err := c.Load("likes(bob, carol)."); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "result" {
		t.Fatalf("unrelated write evicted the memoized answer (cache=%q)", res.Cache)
	}
	// A write to the read table no longer re-evaluates: the default Auto
	// maintenance policy folds the one-fact delta into the memoized
	// answer, so the next repeat serves the maintained result.
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "maintained" {
		t.Fatalf("touched-table write should maintain the memoized answer (cache=%q)", res.Cache)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("re-evaluation missed the new edge: %d rows", len(res.Rows))
	}
}

// TestSnapshotResultStampsGeneration: results report the snapshot
// generation they were computed (or served) against.
func TestSnapshotResultStampsGeneration(t *testing.T) {
	c := snapshotChain(t)
	const q = "?- ancestor(c0, X)."
	res1, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Snapshot == 0 {
		t.Fatal("concurrent query did not stamp a snapshot generation")
	}
	if err := c.Load("parent(c15, c16)."); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Snapshot <= res1.Snapshot {
		t.Fatalf("snapshot generation did not advance across a commit: %d -> %d", res1.Snapshot, res2.Snapshot)
	}
	st := c.SnapshotStats()
	if st.Gen != res2.Snapshot {
		t.Fatalf("stats gen %d, last query ran at %d", st.Gen, res2.Snapshot)
	}
}
